// Package ts builds finite transition systems from conjunctions of
// component specifications, following §5 of Abadi & Lamport, "Open Systems
// in TLA": the conjunction of the (canonical-form) specifications of
// components that together form a complete system is itself equivalent to a
// canonical-form complete-system specification, whose behaviors an
// explicit-state graph represents exactly.
//
// A step of the conjunction satisfies every component's □[N_i]_⟨m_i,x_i⟩,
// so it may combine real actions of several components simultaneously;
// interleaving is not assumed but may be imposed with Disjoint step
// constraints (§2.3), exactly as the paper does for formula (4) in §A.5.
package ts

import (
	"fmt"
	"sort"
	"sync/atomic"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/reduce"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/store"
	"opentla/internal/value"
)

// StepConstraint is an extra conjunct on every step of the system, such as
// one pair of a Disjoint assumption. The action must already permit
// whatever stuttering it intends to permit (use form.Square).
type StepConstraint struct {
	Name   string
	Action form.Expr
}

// System is a finite-state complete system: the conjunction of component
// specifications plus optional step and initial constraints, over declared
// finite variable domains.
type System struct {
	Name            string
	Components      []*spec.Component
	Constraints     []StepConstraint
	InitConstraints []form.Expr
	// Domains assigns a finite domain to every variable.
	Domains map[string][]value.Value
	// MaxStates bounds graph construction (default 500000).
	MaxStates int
	// Workers is the goroutine count for parallel frontier exploration
	// (0 = GOMAXPROCS). The built graph is identical at any setting.
	Workers int
	// Cache, when non-nil, is consulted before exploring and persisted to
	// after a complete build (see GraphCache). Entries are keyed by
	// CanonicalDesc, so Name/Workers/MaxStates do not affect cache identity.
	Cache GraphCache
	// Resume, when true (and Cache is set), restores a checkpoint saved by
	// an earlier budget-exhausted run and continues the exploration from its
	// last completed level instead of restarting.
	Resume bool
	// Reduce, when non-nil with enabled options, requests state-space
	// reduction: symmetry canonicalization and/or ample-set partial-order
	// reduction (see internal/reduce). An invalid symmetry declaration is a
	// BuildWith error — at this level the declaration is the user's claim
	// and a wrong claim must fail loudly, not silently explore less.
	// Liveness checks refuse reduced graphs (see check.FindFairLasso);
	// safety checks must iterate real steps via ForEachSuccStep.
	Reduce *reduce.Config
}

// reduceSteps converts the step constraints to the reduce package's named
// expressions (shared by symmetry validation and the POR planner).
func (sys *System) reduceSteps() []reduce.NamedExpr {
	out := make([]reduce.NamedExpr, 0, len(sys.Constraints))
	for _, sc := range sys.Constraints {
		out = append(out, reduce.NamedExpr{Name: sc.Name, E: sc.Action})
	}
	return out
}

// reduceInits converts the init constraints to named expressions.
func (sys *System) reduceInits() []reduce.NamedExpr {
	out := make([]reduce.NamedExpr, 0, len(sys.InitConstraints))
	for i, ic := range sys.InitConstraints {
		out = append(out, reduce.NamedExpr{Name: fmt.Sprintf("init-%d", i), E: ic})
	}
	return out
}

// Vars returns the sorted union of all variables of the system.
func (sys *System) Vars() []string {
	set := make(map[string]bool)
	for _, c := range sys.Components {
		for _, v := range c.Vars() {
			set[v] = true
		}
	}
	for _, sc := range sys.Constraints {
		for _, v := range form.AllVars(sc.Action) {
			set[v] = true
		}
	}
	for _, ic := range sys.InitConstraints {
		for _, v := range form.AllVars(ic) {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// FreeVars returns the variables owned by no component: under conjunction
// semantics they may change arbitrarily (within their domains) on any step.
func (sys *System) FreeVars() []string {
	owned := make(map[string]bool)
	for _, c := range sys.Components {
		for _, v := range c.Owned() {
			owned[v] = true
		}
	}
	var out []string
	for _, v := range sys.Vars() {
		if !owned[v] {
			out = append(out, v)
		}
	}
	return out
}

// Ctx returns an evaluation context over the system's domains.
func (sys *System) Ctx() *form.Ctx { return form.NewCtx(sys.Domains) }

// Validate checks that the system is well-formed: components validate
// individually, owned variable sets are pairwise disjoint, and every
// variable has a nonempty domain.
func (sys *System) Validate() error {
	ownedBy := make(map[string]string)
	for _, c := range sys.Components {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("system %s: %w", sys.Name, err)
		}
		for _, v := range c.Owned() {
			if prev, dup := ownedBy[v]; dup {
				return fmt.Errorf("system %s: variable %q owned by both %s and %s", sys.Name, v, prev, c.Name)
			}
			ownedBy[v] = c.Name
		}
	}
	for _, v := range sys.Vars() {
		if len(sys.Domains[v]) == 0 {
			return fmt.Errorf("system %s: variable %q has no domain", sys.Name, v)
		}
	}
	return nil
}

func (sys *System) maxStates() int {
	if sys.MaxStates <= 0 {
		return 500000
	}
	return sys.MaxStates
}

// compiledComponent caches per-component data used during successor
// generation.
type compiledComponent struct {
	comp    *spec.Component
	owned   []string
	actions []compiledAction
}

type compiledAction struct {
	name   string
	def    form.Expr
	pred   form.CompiledPred // def compiled against the system layout
	exec   spec.ExecFunc
	primed []string // primed variables of def, for free-dependence analysis
}

// compiledConstraint is a step constraint with its primed variables
// precomputed (see successors: a constraint whose primed variables avoid the
// free set has the same verdict for every free assignment).
type compiledConstraint struct {
	name   string
	action form.Expr
	pred   form.CompiledPred // action compiled against the system layout
	primed []string
}

// compiledSystem caches everything successor generation needs: per-component
// actions with executable update generators, plus the step constraints.
// It is immutable after compile and shared across exploration workers.
type compiledSystem struct {
	comps       []compiledComponent
	constraints []compiledConstraint
}

func (sys *System) compile() (*compiledSystem, error) {
	// All states of a system bind exactly sys.Vars(); compiling every
	// declarative definition against that layout once moves variable
	// resolution and stutter-equality checks out of the per-candidate loop.
	layout := sys.Vars()
	cs := &compiledSystem{comps: make([]compiledComponent, len(sys.Components))}
	for i, c := range sys.Components {
		cc := compiledComponent{comp: c, owned: c.Owned()}
		for _, a := range c.Actions {
			ca := compiledAction{name: a.Name, def: a.Def, exec: a.Exec, primed: form.PrimedVars(a.Def)}
			if a.Def != nil {
				ca.pred = form.CompilePred(a.Def, layout)
			}
			if ca.exec == nil {
				n, err := updateSpaceSize(cc.owned, sys.Domains)
				if err != nil {
					return nil, fmt.Errorf("component %s action %s: %w", c.Name, a.Name, err)
				}
				if n > 1_000_000 {
					return nil, fmt.Errorf("component %s action %s: no Exec and %d brute-force updates; supply an Exec generator", c.Name, a.Name, n)
				}
				ca.exec = spec.BruteExec(cc.owned, sys.Domains, a.Def)
			}
			cc.actions = append(cc.actions, ca)
		}
		cs.comps[i] = cc
	}
	for _, sc := range sys.Constraints {
		cs.constraints = append(cs.constraints, compiledConstraint{
			name: sc.Name, action: sc.Action, pred: form.CompilePred(sc.Action, layout),
			primed: form.PrimedVars(sc.Action),
		})
	}
	return cs, nil
}

func updateSpaceSize(vars []string, domains map[string][]value.Value) (int, error) {
	n := 1
	for _, v := range vars {
		d := domains[v]
		if len(d) == 0 {
			return 0, fmt.Errorf("variable %q has no domain", v)
		}
		n *= len(d)
		if n > 1<<30 {
			return n, nil
		}
	}
	return n, nil
}

// InitialStates enumerates the states over the full variable set whose
// assignments satisfy every component's Init and every initial constraint.
func (sys *System) InitialStates() ([]*state.State, error) {
	return sys.initialStates(engine.NoLimit())
}

// initialStates is InitialStates under a resource meter: the enumeration is
// a cooperative cancellation point, and a statically oversized instance
// fails informatively with an *engine.BudgetError instead of grinding.
func (sys *System) initialStates(m *engine.Meter) ([]*state.State, error) {
	vars := sys.Vars()
	total, err := updateSpaceSize(vars, sys.Domains)
	if err != nil {
		return nil, err
	}
	if total > 10_000_000 {
		return nil, &engine.BudgetError{
			Reason: fmt.Sprintf("system %s: initial-state space %d exceeds the enumeration limit; shrink the instance or its domains", sys.Name, total),
			Stats:  m.Stats(),
		}
	}
	var preds []form.Expr
	for _, c := range sys.Components {
		if c.Init != nil {
			preds = append(preds, c.Init)
		}
	}
	preds = append(preds, sys.InitConstraints...)
	// The enumeration can visit millions of assignments; compiled predicates
	// keep the per-assignment cost to positional reads.
	compiled := make([]form.CompiledPred, len(preds))
	for i, p := range preds {
		compiled[i] = form.CompilePred(p, vars)
	}
	var out []*state.State
	var evalErr error
	value.ForEachAssignment(vars, sys.Domains, func(a map[string]value.Value) bool {
		if err := m.Tick(); err != nil {
			evalErr = err
			return false
		}
		s := state.New(a)
		for i, p := range compiled {
			ok, err := p(state.Step{From: s})
			if err != nil {
				evalErr = fmt.Errorf("system %s: evaluating Init %s on %s: %w", sys.Name, preds[i], s, err)
				return false
			}
			if !ok {
				return true
			}
		}
		out = append(out, s)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// choice is one component's contribution to a joint step with its update
// resolved to positional form: either a stutter (action == nil, no updates)
// or a named action reassigning its owned variables. Positional updates let
// each candidate successor be built with a single slice copy (CloneWith)
// instead of one map-merge-sort per component. defFreeDep records whether
// the action's definition primes any free variable; when it does not, its
// verdict on a candidate step is the same under every free assignment and
// is cached per choice combination.
type choice struct {
	action     *compiledAction
	ups        []state.PosUpdate
	defFreeDep bool
}

// posUpdates resolves an action's update map against s's binding positions.
// Every updated variable must already be bound: successor generation works
// over the full variable set, so an unbound name means the action writes a
// variable outside the system.
func (sys *System) posUpdates(ca *compiledAction, s *state.State, up map[string]value.Value) ([]state.PosUpdate, error) {
	ups := make([]state.PosUpdate, 0, len(up))
	for n, v := range up {
		p, ok := s.PosOf(n)
		if !ok {
			return nil, fmt.Errorf("system %s: action %s updates variable %q not bound in state %s", sys.Name, ca.name, n, s)
		}
		ups = append(ups, state.PosUpdate{Pos: p, Val: v})
	}
	return ups, nil
}

// Successors computes all states t such that ⟨s, t⟩ satisfies every
// component's [N_i]_⟨m_i,x_i⟩, every step constraint, and changes free
// variables arbitrarily. The result always includes s itself (stuttering).
func (sys *System) Successors(s *state.State) ([]*state.State, error) {
	cs, err := sys.compile()
	if err != nil {
		return nil, err
	}
	return sys.successors(cs, sys.FreeVars(), s)
}

// Combo-cache verdicts for the free-independent part of a step's validity.
const (
	comboUnknown int8 = iota
	comboPass
	comboFail
)

// maxComboCache bounds the per-state verdict cache; a system with more
// choice combinations than this per state falls back to uncached checking.
const maxComboCache = 1 << 20

// successors enumerates every candidate step from s and verifies each
// against the declarative definitions: each chosen action's Def and every
// step constraint, evaluated on the merged pair. Verifying Def on the merged
// pair is what rejects cross-component conflicts (e.g. an action asserting
// z' = z merged with another component's change to z).
//
// Candidates are the cross product of free-variable assignments and
// per-component choice combinations. An expression that primes no free
// variable has the same verdict for a given choice combination under every
// free assignment (unprimed variables read s, which is fixed), so those
// verdicts are computed once per combination and cached.
func (sys *System) successors(cs *compiledSystem, free []string, s *state.State) ([]*state.State, error) {
	compiled := cs.comps
	freeSet := make(map[string]bool, len(free))
	for _, v := range free {
		freeSet[v] = true
	}
	primesFree := func(vars []string) bool {
		for _, v := range vars {
			if freeSet[v] {
				return true
			}
		}
		return false
	}

	// Split the step constraints by free-dependence.
	var consIndep, consDep []*compiledConstraint
	for i := range cs.constraints {
		c := &cs.constraints[i]
		if primesFree(c.primed) {
			consDep = append(consDep, c)
		} else {
			consIndep = append(consIndep, c)
		}
	}

	// Gather each component's choices in state s, resolving update maps to
	// positional form once so each candidate below costs one slice copy.
	perComp := make([][]choice, len(compiled))
	comboCount := 1
	for i, cc := range compiled {
		chs := []choice{{action: nil}} // stutter
		for ai := range cc.actions {
			ca := &cc.actions[ai]
			dep := primesFree(ca.primed)
			for _, up := range ca.exec(s) {
				ups, err := sys.posUpdates(ca, s, up)
				if err != nil {
					return nil, err
				}
				chs = append(chs, choice{action: ca, ups: ups, defFreeDep: dep})
			}
		}
		perComp[i] = chs
		if comboCount <= maxComboCache {
			comboCount *= len(chs)
		}
	}
	var comboCache []int8
	strides := make([]int, len(compiled))
	if comboCount <= maxComboCache {
		comboCache = make([]int8, comboCount)
		stride := 1
		for ci := range compiled {
			strides[ci] = stride
			stride *= len(perComp[ci])
		}
	}

	// Resolve free-variable positions and domains once; most systems have
	// none, in which case the outer loop body runs exactly once.
	freePos := make([]state.PosUpdate, len(free))
	freeDoms := make([][]value.Value, len(free))
	freeIdx := make([]int, len(free))
	for i, v := range free {
		p, ok := s.PosOf(v)
		if !ok {
			return nil, fmt.Errorf("system %s: free variable %q not bound in state %s", sys.Name, v, s)
		}
		freePos[i] = state.PosUpdate{Pos: p}
		freeDoms[i] = sys.Domains[v]
	}

	evalOn := func(kind, name string, pred form.CompiledPred, e form.Expr, st state.Step) (bool, error) {
		var ok bool
		var err error
		if pred != nil {
			ok, err = pred(st)
		} else {
			ok, err = form.EvalBool(e, st, nil)
		}
		if err != nil {
			return false, fmt.Errorf("system %s: %s %s on %s: %w", sys.Name, kind, name, st, err)
		}
		return ok, nil
	}

	seen := store.NewSet() // fingerprint dedup; Key() stays out of this hot path
	var out []*state.State
	groups := make([][]state.PosUpdate, len(compiled)+1)
	idx := make([]int, len(compiled))
	var chosen []*choice
	// All candidates are built in one goroutine-local scratch state; only
	// accepted ones are materialized (Clone), so rejected and duplicate
	// candidates cost no allocation.
	scratch := state.New(nil)

	for {
		for i := range free {
			freePos[i].Val = freeDoms[i][freeIdx[i]]
		}
		groups[0] = freePos
		// Enumerate per-component choice combinations under this free
		// assignment.
		for i := range idx {
			idx[i] = 0
		}
		for {
			cv, lin := comboUnknown, 0
			if comboCache != nil {
				for ci := range idx {
					lin += idx[ci] * strides[ci]
				}
				cv = comboCache[lin]
				if cv == comboFail {
					// Known invalid under every free assignment: skip
					// without even building the candidate.
					if !advance(idx, perComp) {
						break
					}
					continue
				}
			}
			chosen = chosen[:0]
			for ci := range compiled {
				ch := &perComp[ci][idx[ci]]
				groups[ci+1] = ch.ups
				if ch.action != nil {
					chosen = append(chosen, ch)
				}
			}
			s.OverwriteInto(scratch, groups...)
			if !seen.Has(scratch) {
				st := state.Step{From: s, To: scratch}
				valid := true
				if cv == comboUnknown {
					// Free-independent part: chosen defs and constraints
					// that prime no free variable.
					for _, ch := range chosen {
						if ch.defFreeDep {
							continue
						}
						ok, err := evalOn("action", ch.action.name, ch.action.pred, ch.action.def, st)
						if err != nil {
							return nil, err
						}
						if !ok {
							valid = false
							break
						}
					}
					if valid {
						for _, c := range consIndep {
							ok, err := evalOn("constraint", c.name, c.pred, c.action, st)
							if err != nil {
								return nil, err
							}
							if !ok {
								valid = false
								break
							}
						}
					}
					if comboCache != nil {
						if valid {
							comboCache[lin] = comboPass
						} else {
							comboCache[lin] = comboFail
						}
					}
				}
				if valid {
					// Free-dependent part, re-checked per free assignment.
					for _, ch := range chosen {
						if !ch.defFreeDep {
							continue
						}
						ok, err := evalOn("action", ch.action.name, ch.action.pred, ch.action.def, st)
						if err != nil {
							return nil, err
						}
						if !ok {
							valid = false
							break
						}
					}
					if valid {
						for _, c := range consDep {
							ok, err := evalOn("constraint", c.name, c.pred, c.action, st)
							if err != nil {
								return nil, err
							}
							if !ok {
								valid = false
								break
							}
						}
					}
				}
				if valid {
					t := scratch.Clone()
					seen.Add(t)
					out = append(out, t)
				}
			}
			if !advance(idx, perComp) {
				break
			}
		}
		// Advance the free-variable counter. The LAST variable varies
		// fastest, matching value.ForEachAssignment's enumeration order, so
		// successor order — and hence state numbering — is unchanged.
		fi := len(free) - 1
		for fi >= 0 {
			freeIdx[fi]++
			if freeIdx[fi] < len(freeDoms[fi]) {
				break
			}
			freeIdx[fi] = 0
			fi--
		}
		if fi < 0 {
			break
		}
	}
	return out, nil
}

// reductionCounters accumulates reduction statistics across concurrent
// expansion workers; BuildWith reports them once per exploration via
// Meter.NoteReduction.
type reductionCounters struct {
	ampleStates  atomic.Int64
	fullStates   atomic.Int64
	ampleSuccs   atomic.Int64
	fullSuccs    atomic.Int64
	symCollapsed atomic.Int64
}

func (rc *reductionCounters) stats() engine.ReductionStats {
	if rc == nil {
		return engine.ReductionStats{}
	}
	return engine.ReductionStats{
		AmpleStates:  rc.ampleStates.Load(),
		FullStates:   rc.fullStates.Load(),
		AmpleSuccs:   rc.ampleSuccs.Load(),
		FullSuccs:    rc.fullSuccs.Load(),
		SymCollapsed: rc.symCollapsed.Load(),
	}
}

// ampleSuccessors is successor generation under ample-set partial-order
// reduction. It tries each statically eligible component j in declaration
// order: the candidate ample set is j's pure steps from s (j executes one of
// its actions; every other component and every free variable stutters),
// each validated against j's action definition and every step constraint.
// The set is used when it is nonempty (C0), excludes s itself (pure stutter
// carries no progress), and contains no already-committed successor (C3, the
// cycle proviso: an edge back to an explored state could close a cycle of
// ample steps that postpones the other components forever — committed
// states are exactly those assigned at previous level barriers, so this
// test is deterministic at any worker count). If no eligible component
// yields a usable ample set, the state is expanded in full.
//
// The returned list always ends with s: TLA behaviors permit stuttering, so
// every state keeps its self-loop, exactly as in full expansion.
func (sys *System) ampleSuccessors(cs *compiledSystem, free []string, plan *reduce.PORPlan, skipC3 bool, s *state.State, committed func(*state.State) bool, rc *reductionCounters) ([]*state.State, error) {
	evalStep := func(kind, name string, pred form.CompiledPred, e form.Expr, st state.Step) (bool, error) {
		ok, err := pred(st)
		if err != nil {
			return false, fmt.Errorf("system %s: %s %s on %s: %w", sys.Name, kind, name, st, err)
		}
		return ok, nil
	}

nextComponent:
	for j := range cs.comps {
		if !plan.Eligible(j) {
			continue
		}
		cc := &cs.comps[j]
		seen := store.NewSet()
		var amp []*state.State
		for ai := range cc.actions {
			ca := &cc.actions[ai]
			for _, up := range ca.exec(s) {
				ups, err := sys.posUpdates(ca, s, up)
				if err != nil {
					return nil, err
				}
				t := s.CloneWith(ups)
				if t.Equal(s) || seen.Has(t) {
					continue
				}
				st := state.Step{From: s, To: t}
				ok, err := evalStep("action", ca.name, ca.pred, ca.def, st)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				for ci := range cs.constraints {
					c := &cs.constraints[ci]
					ok, err = evalStep("constraint", c.name, c.pred, c.action, st)
					if err != nil {
						return nil, err
					}
					if !ok {
						break
					}
				}
				if !ok {
					continue
				}
				seen.Add(t)
				amp = append(amp, t)
			}
		}
		if len(amp) == 0 {
			continue // C0: an empty ample set selects nothing
		}
		if !skipC3 {
			for _, t := range amp {
				if committed(t) {
					continue nextComponent // C3: possible cycle, try another component
				}
			}
		}
		rc.ampleStates.Add(1)
		rc.ampleSuccs.Add(int64(len(amp)) + 1)
		return append(amp, s), nil
	}

	out, err := sys.successors(cs, free, s)
	if err == nil {
		rc.fullStates.Add(1)
		rc.fullSuccs.Add(int64(len(out)))
	}
	return out, err
}

// advance increments the per-component mixed-radix counter; it returns
// false when the counter wraps (all combinations exhausted).
func advance(idx []int, perComp [][]choice) bool {
	ci := 0
	for ci < len(idx) {
		idx[ci]++
		if idx[ci] < len(perComp[ci]) {
			return true
		}
		idx[ci] = 0
		ci++
	}
	return false
}
