// Package ts builds finite transition systems from conjunctions of
// component specifications, following §5 of Abadi & Lamport, "Open Systems
// in TLA": the conjunction of the (canonical-form) specifications of
// components that together form a complete system is itself equivalent to a
// canonical-form complete-system specification, whose behaviors an
// explicit-state graph represents exactly.
//
// A step of the conjunction satisfies every component's □[N_i]_⟨m_i,x_i⟩,
// so it may combine real actions of several components simultaneously;
// interleaving is not assumed but may be imposed with Disjoint step
// constraints (§2.3), exactly as the paper does for formula (4) in §A.5.
package ts

import (
	"fmt"
	"sort"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

// StepConstraint is an extra conjunct on every step of the system, such as
// one pair of a Disjoint assumption. The action must already permit
// whatever stuttering it intends to permit (use form.Square).
type StepConstraint struct {
	Name   string
	Action form.Expr
}

// System is a finite-state complete system: the conjunction of component
// specifications plus optional step and initial constraints, over declared
// finite variable domains.
type System struct {
	Name            string
	Components      []*spec.Component
	Constraints     []StepConstraint
	InitConstraints []form.Expr
	// Domains assigns a finite domain to every variable.
	Domains map[string][]value.Value
	// MaxStates bounds graph construction (default 500000).
	MaxStates int
}

// Vars returns the sorted union of all variables of the system.
func (sys *System) Vars() []string {
	set := make(map[string]bool)
	for _, c := range sys.Components {
		for _, v := range c.Vars() {
			set[v] = true
		}
	}
	for _, sc := range sys.Constraints {
		for _, v := range form.AllVars(sc.Action) {
			set[v] = true
		}
	}
	for _, ic := range sys.InitConstraints {
		for _, v := range form.AllVars(ic) {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// FreeVars returns the variables owned by no component: under conjunction
// semantics they may change arbitrarily (within their domains) on any step.
func (sys *System) FreeVars() []string {
	owned := make(map[string]bool)
	for _, c := range sys.Components {
		for _, v := range c.Owned() {
			owned[v] = true
		}
	}
	var out []string
	for _, v := range sys.Vars() {
		if !owned[v] {
			out = append(out, v)
		}
	}
	return out
}

// Ctx returns an evaluation context over the system's domains.
func (sys *System) Ctx() *form.Ctx { return form.NewCtx(sys.Domains) }

// Validate checks that the system is well-formed: components validate
// individually, owned variable sets are pairwise disjoint, and every
// variable has a nonempty domain.
func (sys *System) Validate() error {
	ownedBy := make(map[string]string)
	for _, c := range sys.Components {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("system %s: %w", sys.Name, err)
		}
		for _, v := range c.Owned() {
			if prev, dup := ownedBy[v]; dup {
				return fmt.Errorf("system %s: variable %q owned by both %s and %s", sys.Name, v, prev, c.Name)
			}
			ownedBy[v] = c.Name
		}
	}
	for _, v := range sys.Vars() {
		if len(sys.Domains[v]) == 0 {
			return fmt.Errorf("system %s: variable %q has no domain", sys.Name, v)
		}
	}
	return nil
}

func (sys *System) maxStates() int {
	if sys.MaxStates <= 0 {
		return 500000
	}
	return sys.MaxStates
}

// compiledComponent caches per-component data used during successor
// generation.
type compiledComponent struct {
	comp    *spec.Component
	owned   []string
	actions []compiledAction
}

type compiledAction struct {
	name string
	def  form.Expr
	exec spec.ExecFunc
}

func (sys *System) compile() ([]compiledComponent, error) {
	out := make([]compiledComponent, len(sys.Components))
	for i, c := range sys.Components {
		cc := compiledComponent{comp: c, owned: c.Owned()}
		for _, a := range c.Actions {
			ca := compiledAction{name: a.Name, def: a.Def, exec: a.Exec}
			if ca.exec == nil {
				n, err := updateSpaceSize(cc.owned, sys.Domains)
				if err != nil {
					return nil, fmt.Errorf("component %s action %s: %w", c.Name, a.Name, err)
				}
				if n > 1_000_000 {
					return nil, fmt.Errorf("component %s action %s: no Exec and %d brute-force updates; supply an Exec generator", c.Name, a.Name, n)
				}
				ca.exec = spec.BruteExec(cc.owned, sys.Domains, a.Def)
			}
			cc.actions = append(cc.actions, ca)
		}
		out[i] = cc
	}
	return out, nil
}

func updateSpaceSize(vars []string, domains map[string][]value.Value) (int, error) {
	n := 1
	for _, v := range vars {
		d := domains[v]
		if len(d) == 0 {
			return 0, fmt.Errorf("variable %q has no domain", v)
		}
		n *= len(d)
		if n > 1<<30 {
			return n, nil
		}
	}
	return n, nil
}

// InitialStates enumerates the states over the full variable set whose
// assignments satisfy every component's Init and every initial constraint.
func (sys *System) InitialStates() ([]*state.State, error) {
	return sys.initialStates(engine.NoLimit())
}

// initialStates is InitialStates under a resource meter: the enumeration is
// a cooperative cancellation point, and a statically oversized instance
// fails informatively with an *engine.BudgetError instead of grinding.
func (sys *System) initialStates(m *engine.Meter) ([]*state.State, error) {
	vars := sys.Vars()
	total, err := updateSpaceSize(vars, sys.Domains)
	if err != nil {
		return nil, err
	}
	if total > 10_000_000 {
		return nil, &engine.BudgetError{
			Reason: fmt.Sprintf("system %s: initial-state space %d exceeds the enumeration limit; shrink the instance or its domains", sys.Name, total),
			Stats:  m.Stats(),
		}
	}
	var preds []form.Expr
	for _, c := range sys.Components {
		if c.Init != nil {
			preds = append(preds, c.Init)
		}
	}
	preds = append(preds, sys.InitConstraints...)
	var out []*state.State
	var evalErr error
	value.ForEachAssignment(vars, sys.Domains, func(a map[string]value.Value) bool {
		if err := m.Tick(); err != nil {
			evalErr = err
			return false
		}
		s := state.New(a)
		for _, p := range preds {
			ok, err := form.EvalStateBool(p, s)
			if err != nil {
				evalErr = fmt.Errorf("system %s: evaluating Init %s on %s: %w", sys.Name, p, s, err)
				return false
			}
			if !ok {
				return true
			}
		}
		out = append(out, s)
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// choice is one component's contribution to a joint step: either a stutter
// (action == nil, empty update) or a named action with an owned-variable
// update.
type choice struct {
	action *compiledAction
	update map[string]value.Value
}

// Successors computes all states t such that ⟨s, t⟩ satisfies every
// component's [N_i]_⟨m_i,x_i⟩, every step constraint, and changes free
// variables arbitrarily. The result always includes s itself (stuttering).
func (sys *System) Successors(s *state.State) ([]*state.State, error) {
	compiled, err := sys.compile()
	if err != nil {
		return nil, err
	}
	return sys.successors(compiled, sys.FreeVars(), s)
}

func (sys *System) successors(compiled []compiledComponent, free []string, s *state.State) ([]*state.State, error) {
	// Gather each component's choices in state s.
	perComp := make([][]choice, len(compiled))
	for i, cc := range compiled {
		chs := []choice{{action: nil, update: nil}} // stutter
		for ai := range cc.actions {
			ca := &cc.actions[ai]
			for _, up := range ca.exec(s) {
				chs = append(chs, choice{action: ca, update: up})
			}
		}
		perComp[i] = chs
	}

	seen := make(map[string]bool)
	var out []*state.State
	var evalErr error

	// Enumerate free-variable assignments (held fixed per combination);
	// most systems have none, in which case this loop body runs once with
	// an empty update.
	freeOK := value.ForEachAssignment(free, sys.Domains, func(fa map[string]value.Value) bool {
		freeUpdate := make(map[string]value.Value, len(fa))
		for k, v := range fa {
			freeUpdate[k] = v
		}
		// Enumerate per-component choice combinations.
		idx := make([]int, len(compiled))
		for {
			t := s.WithAll(freeUpdate)
			var chosen []*compiledAction
			for ci := range compiled {
				ch := perComp[ci][idx[ci]]
				if ch.update != nil {
					t = t.WithAll(ch.update)
				}
				if ch.action != nil {
					chosen = append(chosen, ch.action)
				}
			}
			if !seen[t.Key()] {
				ok, err := sys.validStep(compiled, s, t, chosen)
				if err != nil {
					evalErr = err
					return false
				}
				if ok {
					seen[t.Key()] = true
					out = append(out, t)
				}
			}
			// Advance the mixed-radix counter.
			ci := 0
			for ci < len(compiled) {
				idx[ci]++
				if idx[ci] < len(perComp[ci]) {
					break
				}
				idx[ci] = 0
				ci++
			}
			if ci == len(compiled) {
				break
			}
		}
		return true
	})
	_ = freeOK
	if evalErr != nil {
		return nil, evalErr
	}
	return out, nil
}

// validStep verifies a candidate step against the declarative definitions:
// each chosen action's Def, each unchosen component's stuttering (which
// holds by construction, since owned sets are disjoint), and every step
// constraint. Verifying Def on the merged pair is what rejects cross-
// component conflicts (e.g. an action asserting z' = z merged with another
// component's change to z).
func (sys *System) validStep(compiled []compiledComponent, s, t *state.State, chosen []*compiledAction) (bool, error) {
	st := state.Step{From: s, To: t}
	for _, ca := range chosen {
		ok, err := form.EvalBool(ca.def, st, nil)
		if err != nil {
			return false, fmt.Errorf("system %s: action %s on %s: %w", sys.Name, ca.name, st, err)
		}
		if !ok {
			return false, nil
		}
	}
	for _, sc := range sys.Constraints {
		ok, err := form.EvalBool(sc.Action, st, nil)
		if err != nil {
			return false, fmt.Errorf("system %s: constraint %s on %s: %w", sys.Name, sc.Name, st, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}
