package ts

import (
	"strconv"
	"sync/atomic"
	"time"

	"opentla/internal/engine"
	"opentla/internal/metrics"
	"opentla/internal/trace"
)

// exploreSeq numbers the explorations of one process (graph builds, monitor
// products). Each exploration tags its slices with a "run" arg so trace
// analysis can group per-level timings per exploration — BFS levels restart
// at 0 in every build, so the level arg alone is ambiguous.
var exploreSeq atomic.Int64

// exploreTelemetry is the per-exploration performance-telemetry bundle: one
// trace track per BFS worker, a barrier track for the single-threaded commit
// work, and the contention-analysis instruments. It exists only when the
// meter's observer carries a tracer or a metric registry (see internal/obs);
// a nil *exploreTelemetry keeps the explorer's hot paths at one pointer
// check, which is what the telemetry overhead gate pins.
//
// Concurrency: each worker writes only its own tracks[wid] slice buffer and
// drainEnd[wid] slot (single-writer, distinct indices); the coordinator reads
// them in barrierDone only after the level's WaitGroup barrier, which
// provides the happens-before edge. Counters and histograms are atomic.
type exploreTelemetry struct {
	run     int64          // this exploration's exploreSeq number
	tracks  []*trace.Track // one per worker id; nil entries are no-ops
	barrier *trace.Track

	barrierWait *metrics.Histogram
	workerBusy  *metrics.Counter
	canonNS     *metrics.Counter
	commitNS    *metrics.Counter
	commitParNS *metrics.Counter
	levels      *metrics.Counter

	// drainEnd[wid] is when worker wid finished draining the current level;
	// the gap to the slowest worker is its barrier wait.
	drainEnd []time.Time
}

// newExploreTelemetry builds the telemetry bundle for one exploration, or
// returns nil when neither a tracer nor a registry is attached to the meter.
// Worker tracks are created upfront for the full pool so the trace always
// shows one row per configured worker, even when narrow levels use fewer.
func newExploreTelemetry(m *engine.Meter, workers int) *exploreTelemetry {
	tr := trace.FromMeter(m)
	reg := metrics.FromMeter(m)
	if tr == nil && reg == nil {
		return nil
	}
	et := &exploreTelemetry{
		run:      exploreSeq.Add(1),
		tracks:   make([]*trace.Track, workers),
		drainEnd: make([]time.Time, workers),
	}
	for wid := range et.tracks {
		et.tracks[wid] = tr.Track("worker " + strconv.Itoa(wid))
	}
	et.barrier = tr.Track("barrier")
	if reg != nil {
		et.barrierWait = reg.Histogram("opentla_barrier_wait_nanoseconds",
			"per-worker idle time at level barriers, waiting for the slowest worker", nil)
		et.workerBusy = reg.Counter("opentla_worker_busy_nanoseconds_total",
			"time workers spent draining frontier chunks (successor generation + canonicalization)")
		et.canonNS = reg.Counter("opentla_canon_nanoseconds_total",
			"time spent canonicalizing successors under symmetry reduction")
		et.commitNS = reg.Counter("opentla_barrier_commit_nanoseconds_total",
			"single-threaded time sealing level barriers (partition bases, array growth, CSR offsets prefix sum)")
		et.commitParNS = reg.Counter("opentla_barrier_parallel_commit_nanoseconds_total",
			"aggregate worker time in the parallel commit phases (partition numbering + CSR row remap)")
		et.levels = reg.Counter("opentla_levels_total", "level barriers completed")
		reg.Gauge("opentla_workers", "worker pool size of the latest exploration").
			Set(int64(workers))
	}
	return et
}

// endDrain closes one worker's share of a level: an "expand" slice on its
// track carrying the level's tallies, plus busy/canonicalization counters.
// Called by each worker for itself, concurrently with other workers.
func (et *exploreTelemetry) endDrain(wid, level int, ws *workerScratch, start time.Time) {
	end := time.Now()
	et.drainEnd[wid] = end
	et.tracks[wid].Slice("explore", "expand", start, end,
		trace.KV{K: "run", V: et.run},
		trace.KV{K: "level", V: int64(level)},
		trace.KV{K: "states", V: ws.levelStates},
		trace.KV{K: "succs", V: ws.levelSuccs},
		trace.KV{K: "canon_ns", V: ws.levelCanonNS})
	et.workerBusy.Add(end.Sub(start).Nanoseconds())
	et.canonNS.Add(ws.levelCanonNS)
}

// barrierDone records the serial section of one level barrier: each
// participating worker's idle wait (from its own drain end until the slowest
// worker finished) and the single-threaded seal span (partition bases, array
// growth, CSR offsets prefix sum). Called by the coordinator after the seal;
// the parallel commit phases that follow report per worker through
// endCommitPhase.
func (et *exploreTelemetry) barrierDone(level, w int, drainDone, sealEnd time.Time) {
	runKV := trace.KV{K: "run", V: et.run}
	lvl := trace.KV{K: "level", V: int64(level)}
	for wid := 0; wid < w; wid++ {
		end := et.drainEnd[wid]
		wait := drainDone.Sub(end).Nanoseconds()
		if wait < 0 {
			wait = 0
		}
		et.barrierWait.Observe(wait)
		et.tracks[wid].Slice("explore", "barrier-wait", end, drainDone, runKV, lvl)
	}
	et.barrier.Slice("explore", "commit", drainDone, sealEnd, runKV, lvl)
	et.commitNS.Add(sealEnd.Sub(drainDone).Nanoseconds())
}

// endCommitPhase records one worker's share of a parallel commit phase
// (partition numbering or CSR row remap) as a "commit" slice on its own
// track. Called by each worker for itself, concurrently with other workers.
func (et *exploreTelemetry) endCommitPhase(wid, level int, start time.Time) {
	end := time.Now()
	et.tracks[wid].Slice("explore", "commit", start, end,
		trace.KV{K: "run", V: et.run},
		trace.KV{K: "level", V: int64(level)})
	et.commitParNS.Add(end.Sub(start).Nanoseconds())
}

// levelDone counts one fully committed level barrier.
func (et *exploreTelemetry) levelDone() {
	et.levels.Inc()
}

// observeCacheOp records one graph-cache operation (load/store/checkpoint) as
// a slice on the trace's "cache" track and an observation in the op's latency
// histogram. With no telemetry attached the cost is the caller's time.Now.
func observeCacheOp(m *engine.Meter, op string, start time.Time) {
	tr := trace.FromMeter(m)
	reg := metrics.FromMeter(m)
	if tr == nil && reg == nil {
		return
	}
	end := time.Now()
	tr.Track("cache").Slice("cache", op, start, end)
	reg.Histogram("opentla_cache_"+op+"_nanoseconds", "graph cache "+op+" latency", nil).
		Observe(end.Sub(start).Nanoseconds())
}

// noteReductionMetrics exports one exploration's reduction statistics as
// counters: ample hits/misses (states that took an ample set vs. fell back
// to full expansion) and the successor and symmetry-collapse tallies.
func noteReductionMetrics(m *engine.Meter, st engine.ReductionStats) {
	reg := metrics.FromMeter(m)
	if reg == nil {
		return
	}
	reg.Counter("opentla_reduce_ample_states_total",
		"states expanded through an ample set (POR hits)").Add(st.AmpleStates)
	reg.Counter("opentla_reduce_full_states_total",
		"states expanded in full under reduction (POR misses)").Add(st.FullStates)
	reg.Counter("opentla_reduce_ample_succs_total",
		"successors emitted by ample sets").Add(st.AmpleSuccs)
	reg.Counter("opentla_reduce_full_succs_total",
		"successors emitted by full expansion under reduction").Add(st.FullSuccs)
	reg.Counter("opentla_reduce_sym_collapsed_total",
		"successor slots redirected to a symmetry orbit representative").Add(st.SymCollapsed)
}
