package ts

import (
	"fmt"
	"strings"
	"testing"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/value"
)

// signature renders a graph's complete observable structure — state keys in
// id order, initial ids, and the full adjacency — so two graphs are
// byte-identical iff their signatures match.
func signature(g *Graph) string {
	var sb strings.Builder
	for id, s := range g.States {
		fmt.Fprintf(&sb, "%d:%s\n", id, s.Key())
	}
	fmt.Fprintf(&sb, "inits:%v\n", g.Inits)
	for id := range g.States {
		fmt.Fprintf(&sb, "%d ->", id)
		g.ForEachSucc(id, func(to int) bool {
			fmt.Fprintf(&sb, " %d", to)
			return true
		})
		sb.WriteByte('\n')
	}
	return sb.String()
}

// pairSystem is a two-counter system with free variables disabled; its graph
// is wide enough (multi-state levels) to exercise real worker parallelism.
func pairSystem(top int64) *System {
	a := counterComponent(top)
	b := counterComponent(top).Rename("counter-y", map[string]string{"x": "y"})
	return &System{
		Name:       "pair",
		Components: []*spec.Component{a, b},
		Domains: map[string][]value.Value{
			"x": value.Ints(0, top),
			"y": value.Ints(0, top),
		},
	}
}

// TestParallelBuildDeterministic verifies the tentpole guarantee: the graph
// built with any worker count is identical — same numbering, same inits,
// same adjacency — to the sequential one, across the partitioned parallel
// barrier. Run with -race and -cpu 1,4,8 (CI does).
func TestParallelBuildDeterministic(t *testing.T) {
	for _, mk := range []func() *System{
		func() *System { return counterSystem(6) },
		func() *System { return pairSystem(4) },
	} {
		seq := mk()
		seq.Workers = 1
		gSeq, err := seq.Build()
		if err != nil {
			t.Fatal(err)
		}
		want := signature(gSeq)
		for _, workers := range []int{0, 2, 4, 7, 8, 13} {
			sys := mk()
			sys.Workers = workers
			g, err := sys.Build()
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if got := signature(g); got != want {
				t.Errorf("system %s: graph at workers=%d differs from sequential:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
					sys.Name, workers, want, workers, got)
			}
		}
	}
}

// TestParallelProductDeterministic extends the determinism guarantee to
// monitor products: the product graph over a parallel-built base must be
// identical at every worker count.
func TestParallelProductDeterministic(t *testing.T) {
	mon := func() *Monitor {
		// Tracks whether x has stayed below 3 so far.
		below := form.Lt(form.PrimedVar("x"), form.IntC(3))
		return SafetyMonitor("ok", form.Lt(form.Var("x"), form.IntC(3)),
			[]form.Expr{form.Square(below, form.Var("x"))}, true)
	}
	build := func(workers int) *Graph {
		sys := pairSystem(4)
		sys.Workers = workers
		g, err := sys.Build()
		if err != nil {
			t.Fatal(err)
		}
		p, err := Product(g, []*Monitor{mon()})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	want := signature(build(1))
	for _, workers := range []int{0, 2, 4, 8} {
		if got := signature(build(workers)); got != want {
			t.Errorf("product at workers=%d differs from sequential", workers)
		}
	}
}

// TestParallelBuildSharesMeter checks that budget enforcement stays exact
// under parallel exploration: the meter's counters equal the graph's sizes,
// and a too-small state budget aborts with a BudgetError from any worker.
func TestParallelBuildSharesMeter(t *testing.T) {
	sys := pairSystem(4)
	sys.Workers = 4
	m := engine.NoLimit()
	g, err := sys.BuildWith(m)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.States != g.NumStates() {
		t.Errorf("meter states = %d, graph states = %d", st.States, g.NumStates())
	}
	if st.Transitions != g.NumEdges() {
		t.Errorf("meter transitions = %d, graph edges = %d", st.Transitions, g.NumEdges())
	}

	tight := pairSystem(4)
	tight.Workers = 4
	_, err = tight.BuildWith(engine.Budget{MaxStates: 5}.Meter())
	var be *engine.BudgetError
	if !asBudgetError(err, &be) {
		t.Fatalf("tight budget: got %v, want *engine.BudgetError", err)
	}
}

func asBudgetError(err error, be **engine.BudgetError) bool {
	b, ok := err.(*engine.BudgetError)
	if ok {
		*be = b
	}
	return ok
}
