package ts

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"opentla/internal/engine"
	"opentla/internal/state"
	"opentla/internal/store"
)

// exploreParams configures one frontier exploration (a graph build or a
// monitor product). The expand callback must be deterministic and safe for
// concurrent invocation on distinct states: it is called exactly once per
// reachable state, possibly from several worker goroutines at once.
type exploreParams struct {
	// op names the exploration for contained-panic diagnostics
	// (engine.EngineError.Op), e.g. "ts.Build(counter)".
	op string
	// workers is the goroutine pool size; <= 0 means GOMAXPROCS.
	workers int
	// limit is the legacy per-system MaxStates cap; limitName prefixes its
	// BudgetError reason ("system X", "monitor product").
	limit     int
	limitName string
	meter     *engine.Meter
	// inits seeds the exploration, in a deterministic order.
	inits []*state.State
	// expand returns the successor states of s (duplicates allowed; the
	// store dedups). Successor order must be deterministic in s.
	expand func(s *state.State) ([]*state.State, error)
	// resume, when non-nil, restores a checkpoint: the committed states,
	// inits, and adjacency rows are adopted verbatim (without consuming
	// state budget — restored work was paid for by the interrupted run) and
	// the BFS continues from the saved frontier. inits is ignored.
	resume *Snapshot
	// onCheckpoint, when non-nil, receives a checkpoint snapshot of the
	// last fully committed level barrier if exploration aborts on budget
	// exhaustion. Mid-level partial work is discarded — checkpoints have
	// level granularity, so a resumed run re-expands the saved frontier and
	// rediscovers exactly the same states.
	onCheckpoint func(*Snapshot)
}

// exploreResult is the finalized, deterministic exploration outcome.
type exploreResult struct {
	states  []*state.State // numbered level-by-level, fingerprint-sorted within a level
	inits   []int          // final ids of params.inits, in seed order (deduped to first occurrence)
	idx     *store.Index   // state -> final id lookup for the finished graph
	offsets []int          // CSR row offsets, len(states)+1
	targets []int32        // CSR adjacency, offsets[i]:offsets[i+1] are i's successors
}

// explore runs a level-synchronous parallel frontier BFS over the states
// reachable from params.inits.
//
// Determinism guarantee: the returned numbering, initial-state ids, and
// adjacency are byte-identical for every worker count. States are interned
// concurrently into a sharded store (arrival order is scheduling-dependent),
// but final ids are assigned only at level barriers: the states first
// reached during a level are sorted by fingerprint (ties — genuine 64-bit
// collisions between distinct states — broken by the canonical Key string)
// and numbered in that order. A state's level is its BFS distance from the
// seed set, which no schedule can change, so the numbering depends only on
// the graph itself. Successor lists are produced by the deterministic
// expand callback and recorded per source state, preserving callback order.
func explore(p exploreParams) (*exploreResult, error) {
	m := p.meter
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	interned := store.New()
	res := &exploreResult{idx: store.NewIndex()}
	var adj [][]int32 // indexed by final id, flattened into CSR at the end

	// finals maps intern refs to final ids; written only at level barriers
	// and by the single-threaded seeding below, read by the (sequential)
	// edge remapping.
	finals := make(map[store.Ref]int)

	// Checkpoint bookkeeping: the state count, committed row count, and next
	// level as of the last clean barrier. ckStates < 0 means no consistent
	// point exists yet (mid-seeding).
	ckStates, ckRows, ckLevel := -1, 0, 0
	// fail wraps an abort: budget exhaustion emits a checkpoint of the last
	// clean barrier so a later run can resume instead of restarting.
	fail := func(err error) (*exploreResult, error) {
		if p.onCheckpoint != nil && ckStates >= 0 {
			var be *engine.BudgetError
			if errors.As(err, &be) {
				p.onCheckpoint(checkpointSnapshot(res, adj, ckStates, ckRows, ckLevel))
			}
		}
		return nil, err
	}

	// assign numbers a level's newly discovered states: fingerprint-sorted,
	// Key-tiebroken (total and schedule-independent).
	assign := func(news []newlyInterned) error {
		sort.Slice(news, func(i, j int) bool {
			fi, fj := news[i].st.Fingerprint(), news[j].st.Fingerprint()
			if fi != fj {
				return fi < fj
			}
			return news[i].st.Key() < news[j].st.Key()
		})
		for _, ns := range news {
			id := len(res.states)
			res.states = append(res.states, ns.st)
			res.idx.Put(ns.st, id)
			finals[ns.ref] = id
		}
		if p.limit > 0 && len(res.states) > p.limit {
			return &engine.BudgetError{
				Reason: fmt.Sprintf("%s: state space exceeds MaxStates limit %d", p.limitName, p.limit),
				Stats:  m.Stats(),
			}
		}
		return nil
	}

	levelStart, level := 0, 0
	if p.resume != nil {
		// Restore the checkpoint: adopt the committed numbering, inits, and
		// adjacency verbatim. Interning in final-id order rebuilds finals and
		// the index deterministically; restored states bypass the meter so
		// budgets govern only new work, letting repeated bounded runs make
		// incremental progress.
		for i, s := range p.resume.States {
			ref, _ := interned.Intern(s)
			res.states = append(res.states, s)
			res.idx.Put(s, i)
			finals[ref] = i
		}
		res.inits = append(res.inits, p.resume.Inits...)
		rows := p.resume.Rows()
		for i := 0; i < rows; i++ {
			adj = append(adj, p.resume.Targets[p.resume.Offsets[i]:p.resume.Offsets[i+1]])
		}
		levelStart, level = rows, p.resume.Level
		ckStates, ckRows, ckLevel = len(res.states), rows, level
	} else {
		// Seed level 0.
		var seedNews []newlyInterned
		seedRefs := make([]store.Ref, 0, len(p.inits))
		for _, s := range p.inits {
			ref, added := interned.Intern(s)
			if added {
				seedNews = append(seedNews, newlyInterned{ref: ref, st: s})
				if err := m.AddState(); err != nil {
					return nil, err
				}
			}
			seedRefs = append(seedRefs, ref)
		}
		if err := assign(seedNews); err != nil {
			return nil, err
		}
		for _, ref := range seedRefs {
			res.inits = append(res.inits, finals[ref])
		}
		ckStates, ckRows, ckLevel = len(res.states), 0, 0
	}

	obs := m.Observer()
	for levelStart < len(res.states) {
		levelEnd := len(res.states)
		lv := levelRun{
			params:   &p,
			store:    interned,
			states:   res.states[levelStart:levelEnd],
			succRefs: make([][]store.Ref, levelEnd-levelStart),
			news:     make([][]newlyInterned, workers),
		}
		n := levelEnd - levelStart
		w := workers
		if w > n {
			w = n
		}
		if w <= 1 {
			lv.work(0)
		} else {
			var wg sync.WaitGroup
			for wid := 0; wid < w; wid++ {
				wg.Add(1)
				go func(wid int) {
					defer wg.Done()
					lv.work(wid)
				}(wid)
			}
			wg.Wait()
		}
		if err := lv.firstErr(); err != nil {
			return fail(err)
		}

		// Barrier: number this level's discoveries, then remap and commit
		// the level's successor lists to final ids.
		var merged []newlyInterned
		for _, ws := range lv.news {
			merged = append(merged, ws...)
		}
		if err := assign(merged); err != nil {
			return fail(err)
		}
		for _, refs := range lv.succRefs {
			row := make([]int32, len(refs))
			for j, r := range refs {
				row[j] = int32(finals[r])
			}
			adj = append(adj, row)
		}
		m.NoteFrontier(len(res.states) - levelEnd)
		if obs != nil {
			// Per-level counters for live progress and the flight recorder:
			// BFS depth, the width just drained, the workers that drained it,
			// and the running state total.
			obs.ObserveLevel(p.op, level, levelEnd-levelStart, w, len(res.states))
		}
		level++
		levelStart = levelEnd
		// The barrier is complete: this is a consistent point to resume from.
		ckStates, ckRows, ckLevel = len(res.states), len(adj), level
	}

	// Finalize the compressed-sparse-row adjacency.
	total := 0
	for _, row := range adj {
		total += len(row)
	}
	res.offsets = make([]int, len(res.states)+1)
	res.targets = make([]int32, 0, total)
	for i, row := range adj {
		res.offsets[i] = len(res.targets)
		res.targets = append(res.targets, row...)
	}
	res.offsets[len(res.states)] = len(res.targets)
	return res, nil
}

// checkpointSnapshot copies the committed prefix of an aborted exploration
// into a Snapshot: the first nStates states (levels up to the last barrier),
// the first nRows adjacency rows, and the level to run next. The copy
// detaches the snapshot from the aborted run's scratch (res.states may hold
// partially assigned states past the barrier).
func checkpointSnapshot(res *exploreResult, adj [][]int32, nStates, nRows, level int) *Snapshot {
	snap := &Snapshot{
		Level:  level,
		States: append([]*state.State(nil), res.states[:nStates]...),
		Inits:  append([]int(nil), res.inits...),
	}
	total := 0
	for _, row := range adj[:nRows] {
		total += len(row)
	}
	snap.Offsets = make([]int, nRows+1)
	snap.Targets = make([]int32, 0, total)
	for i, row := range adj[:nRows] {
		snap.Offsets[i] = len(snap.Targets)
		snap.Targets = append(snap.Targets, row...)
	}
	snap.Offsets[nRows] = len(snap.Targets)
	return snap
}

// newlyInterned records a state first reached during the current level,
// awaiting its final id at the barrier.
type newlyInterned struct {
	ref store.Ref
	st  *state.State
}

// levelRun is the shared scratch of one level's worker pool.
type levelRun struct {
	params   *exploreParams
	store    *store.Store
	states   []*state.State    // the frontier (current level), final-id order
	succRefs [][]store.Ref     // per frontier index: successor intern refs
	news     [][]newlyInterned // per worker: states first interned this level

	next atomic.Int64 // frontier work index
	stop atomic.Bool
	mu   sync.Mutex
	err  error
}

func (lv *levelRun) setErr(err error) {
	lv.mu.Lock()
	if lv.err == nil {
		lv.err = err
	}
	lv.mu.Unlock()
	lv.stop.Store(true)
}

func (lv *levelRun) firstErr() error {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.err
}

// work drains frontier indices until the level (or the budget) is
// exhausted. Panics in the expand callback are contained as
// *engine.EngineError carrying the fingerprint of the state being expanded.
func (lv *levelRun) work(wid int) {
	p := lv.params
	m := p.meter
	var cur *state.State
	var perr error
	defer func() {
		if perr != nil {
			lv.setErr(perr)
		}
	}()
	defer engine.Capture(&perr, p.op, func() (string, string) {
		if cur != nil {
			return cur.Key(), ""
		}
		return "", ""
	})
	for {
		if lv.stop.Load() {
			return
		}
		i := int(lv.next.Add(1)) - 1
		if i >= len(lv.states) {
			return
		}
		cur = lv.states[i]
		if err := m.Tick(); err != nil {
			lv.setErr(err)
			return
		}
		succs, err := p.expand(cur)
		if err != nil {
			lv.setErr(err)
			return
		}
		refs := make([]store.Ref, len(succs))
		for j, t := range succs {
			ref, added := lv.store.Intern(t)
			if added {
				lv.news[wid] = append(lv.news[wid], newlyInterned{ref: ref, st: t})
				if err := m.AddState(); err != nil {
					lv.setErr(err)
					return
				}
				if p.limit > 0 && lv.store.Len() > p.limit {
					lv.setErr(&engine.BudgetError{
						Reason: fmt.Sprintf("%s: state space exceeds MaxStates limit %d", p.limitName, p.limit),
						Stats:  m.Stats(),
					})
					return
				}
			}
			refs[j] = ref
		}
		lv.succRefs[i] = refs
		if err := m.AddTransitions(len(succs)); err != nil {
			lv.setErr(err)
			return
		}
	}
}
