package ts

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"opentla/internal/engine"
	"opentla/internal/metrics"
	"opentla/internal/state"
	"opentla/internal/store"
)

// exploreParams configures one frontier exploration (a graph build or a
// monitor product). The expand callback must be deterministic and safe for
// concurrent invocation on distinct states: it is called exactly once per
// reachable state, possibly from several worker goroutines at once.
type exploreParams struct {
	// op names the exploration for contained-panic diagnostics
	// (engine.EngineError.Op), e.g. "ts.Build(counter)".
	op string
	// workers is the goroutine pool size; <= 0 means GOMAXPROCS.
	workers int
	// limit is the legacy per-system MaxStates cap; limitName prefixes its
	// BudgetError reason ("system X", "monitor product").
	limit     int
	limitName string
	meter     *engine.Meter
	// inits seeds the exploration, in a deterministic order.
	inits []*state.State
	// expand returns the successor states of s (duplicates allowed; the
	// store dedups). Successor order must be deterministic in s. The
	// committed callback reports whether a state already has a final id
	// (assigned at a previous level barrier) — reduction uses it for the
	// ample-set cycle proviso; expansions that don't care may ignore it.
	expand func(s *state.State, committed func(*state.State) bool) ([]*state.State, error)
	// canon, when non-nil, maps every state to the canonical representative
	// of its symmetry orbit. Seeds and successors are canonicalized before
	// interning, so the graph holds only representatives; the real (pre-
	// canonicalization) successor of every edge is preserved alongside the
	// canonical target id in edgeStates, keeping each recorded edge a
	// genuine step of the system.
	canon func(*state.State) *state.State
	// resume, when non-nil, restores a checkpoint: the committed states,
	// inits, and adjacency rows are adopted verbatim (without consuming
	// state budget — restored work was paid for by the interrupted run) and
	// the BFS continues from the saved frontier. inits is ignored.
	resume *Snapshot
	// onCheckpoint, when non-nil, receives a checkpoint snapshot of the
	// last fully committed level barrier if exploration aborts on budget
	// exhaustion. Mid-level partial work is discarded — checkpoints have
	// level granularity, so a resumed run re-expands the saved frontier and
	// rediscovers exactly the same states.
	onCheckpoint func(*Snapshot)
}

// exploreResult is the finalized, deterministic exploration outcome.
type exploreResult struct {
	states  []*state.State // numbered level-by-level, fingerprint-sorted within a level
	inits   []int          // final ids of params.inits, in seed order (deduped to first occurrence)
	idx     *store.Index   // state -> final id lookup for the finished graph
	offsets []int          // CSR row offsets, len(states)+1
	targets []int32        // CSR adjacency, offsets[i]:offsets[i+1] are i's successors
	// edgeStates, parallel to targets, holds each edge's real successor
	// state (nil when exploration ran without canon: the canonical target
	// IS the real successor).
	edgeStates []*state.State
	// symCollapsed counts successor and seed slots redirected to a
	// different canonical representative.
	symCollapsed int64
}

// explore runs a level-synchronous parallel frontier BFS over the states
// reachable from params.inits.
//
// Determinism guarantee: the returned numbering, initial-state ids, and
// adjacency are byte-identical for every worker count. States are interned
// concurrently into a sharded store (arrival order is scheduling-dependent),
// but final ids are assigned only at level barriers: the states first
// reached during a level are sorted by fingerprint (ties — genuine 64-bit
// collisions between distinct states — broken by the canonical Key string)
// and numbered in that order. A state's level is its BFS distance from the
// seed set, which no schedule can change, so the numbering depends only on
// the graph itself. Successor lists are produced by the deterministic
// expand callback and recorded per source state, preserving callback order.
//
// The mechanics are built for throughput at scale: a persistent worker pool
// (spawned once, fed one level per round), chunked frontier claiming to keep
// the work-index atomic off the hot path, per-worker successor ref arenas
// reused across levels, batched store interning (one shard lock per
// successor list, not per successor), and a flat-array ref→id table plus
// incrementally built CSR rows so the level barrier is a sort plus two
// array walks — no maps, no per-row allocations.
func explore(p exploreParams) (*exploreResult, error) {
	m := p.meter
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	interned := store.New()
	// Telemetry attaches only when the meter's observer exposes a tracer or a
	// metric registry (internal/obs wires them in behind -trace/-metrics-out);
	// otherwise telem stays nil and the hot paths below pay one pointer check.
	// Store contention counting is gated the same way, behind an atomic
	// pointer inside the store.
	telem := newExploreTelemetry(m, workers)
	if sm := store.NewMetrics(metrics.FromMeter(m)); sm != nil {
		interned.SetMetrics(sm)
		defer sm.Flush()
	}
	res := &exploreResult{idx: store.NewIndex()}
	// Incrementally built CSR adjacency, committed one frontier row at a
	// time at level barriers. offsets always carries the leading 0, so
	// len(offsets)-1 is the committed row count. edgeStates (canon runs
	// only) grows in lockstep with targets.
	offsets := []int{0}
	var targets []int32
	var edgeStates []*state.State

	// committed reports whether a state's canonical representative already
	// has a final id. The index is written only at level barriers and by
	// the single-threaded seeding/resume paths, and read here from workers
	// between barriers, so the probe is race-free and — because barriers
	// are schedule-independent — deterministic at any worker count.
	committed := func(t *state.State) bool {
		if p.canon != nil {
			t = p.canon(t)
		}
		_, ok := res.idx.Get(t)
		return ok
	}

	// finals maps interned refs (via their dense encoding) to final ids;
	// written only at level barriers and by the single-threaded seeding
	// below, read by the (sequential) row remapping. A flat slice instead of
	// a map: the barrier does one remap lookup per edge, and dense refs grow
	// with the state count.
	finals := make([]int32, 0, 1024)
	ensureFinals := func(d int) {
		if d < len(finals) {
			return
		}
		n := len(finals)
		if d >= cap(finals) {
			grown := make([]int32, d+1, max(2*cap(finals), d+1))
			copy(grown, finals)
			finals = grown
		} else {
			finals = finals[:d+1]
		}
		for i := n; i <= d; i++ {
			finals[i] = -1
		}
	}
	setFinal := func(ref store.Ref, id int) {
		d := ref.Dense()
		ensureFinals(d)
		finals[d] = int32(id)
	}

	// Checkpoint bookkeeping: the state count, committed row count, and next
	// level as of the last clean barrier. ckStates < 0 means no consistent
	// point exists yet (mid-seeding).
	ckStates, ckRows, ckLevel := -1, 0, 0
	// fail wraps an abort: budget exhaustion emits a checkpoint of the last
	// clean barrier so a later run can resume instead of restarting.
	fail := func(err error) (*exploreResult, error) {
		if p.onCheckpoint != nil && ckStates >= 0 {
			var be *engine.BudgetError
			if errors.As(err, &be) {
				p.onCheckpoint(checkpointSnapshot(res, offsets, targets, edgeStates, ckStates, ckRows, ckLevel))
			}
		}
		return nil, err
	}

	// assign numbers a level's newly discovered states: fingerprint-sorted,
	// Key-tiebroken (total and schedule-independent).
	assign := func(news []newlyInterned) error {
		sort.Slice(news, func(i, j int) bool {
			fi, fj := news[i].st.Fingerprint(), news[j].st.Fingerprint()
			if fi != fj {
				return fi < fj
			}
			return news[i].st.Key() < news[j].st.Key()
		})
		for _, ns := range news {
			id := len(res.states)
			res.states = append(res.states, ns.st)
			res.idx.Put(ns.st, id)
			setFinal(ns.ref, id)
		}
		if p.limit > 0 && len(res.states) > p.limit {
			return &engine.BudgetError{
				Reason: fmt.Sprintf("%s: state space exceeds MaxStates limit %d", p.limitName, p.limit),
				Stats:  m.Stats(),
			}
		}
		return nil
	}

	levelStart, level := 0, 0
	if p.resume != nil {
		// Restore the checkpoint: adopt the committed numbering, inits, and
		// adjacency verbatim. Interning in final-id order rebuilds finals and
		// the index deterministically; restored states bypass the meter so
		// budgets govern only new work, letting repeated bounded runs make
		// incremental progress.
		for i, s := range p.resume.States {
			ref, _ := interned.Intern(s)
			res.states = append(res.states, s)
			res.idx.Put(s, i)
			setFinal(ref, i)
		}
		res.inits = append(res.inits, p.resume.Inits...)
		rows := p.resume.Rows()
		offsets = append(offsets[:1], p.resume.Offsets[1:]...)
		targets = append(targets, p.resume.Targets...)
		edgeStates = append(edgeStates, p.resume.EdgeStates...)
		levelStart, level = rows, p.resume.Level
		ckStates, ckRows, ckLevel = len(res.states), rows, level
	} else {
		// Seed level 0 (canonical representatives when canon is active: the
		// graph never holds a non-representative state).
		var seedNews []newlyInterned
		seedRefs := make([]store.Ref, 0, len(p.inits))
		for _, s := range p.inits {
			if p.canon != nil {
				if c := p.canon(s); c != s {
					res.symCollapsed++
					s = c
				}
			}
			ref, added := interned.Intern(s)
			if added {
				seedNews = append(seedNews, newlyInterned{ref: ref, st: s})
				if err := m.AddState(); err != nil {
					return nil, err
				}
			}
			seedRefs = append(seedRefs, ref)
		}
		if err := assign(seedNews); err != nil {
			return nil, err
		}
		for _, ref := range seedRefs {
			res.inits = append(res.inits, int(finals[ref.Dense()]))
		}
		ckStates, ckRows, ckLevel = len(res.states), 0, 0
	}

	// The level scratch persists across levels: one levelRun handed to the
	// pool each round, per-worker arenas that keep their capacity, and a
	// reusable merge buffer for the barrier sort.
	lv := &levelRun{
		params:    &p,
		store:     interned,
		scratch:   make([]workerScratch, workers),
		committed: committed,
		telem:     telem,
	}
	var merged []newlyInterned

	// Persistent pool: workers 1..n-1 live for the whole exploration and
	// receive one levelRun per round on a private channel (so each runs a
	// level exactly once); the coordinating goroutine doubles as worker 0.
	var feeds []chan *levelRun
	if workers > 1 {
		feeds = make([]chan *levelRun, workers)
		for wid := 1; wid < workers; wid++ {
			feeds[wid] = make(chan *levelRun)
			go func(wid int, feed chan *levelRun) {
				for run := range feed {
					run.work(wid)
					run.wg.Done()
				}
			}(wid, feeds[wid])
		}
		defer func() {
			for wid := 1; wid < workers; wid++ {
				close(feeds[wid])
			}
		}()
	}

	obs := m.Observer()
	for levelStart < len(res.states) {
		levelEnd := len(res.states)
		n := levelEnd - levelStart
		w := workers
		if w > n {
			w = n
		}
		lv.level = level
		lv.begin(res.states[levelStart:levelEnd], w)
		if w <= 1 {
			lv.work(0)
		} else {
			lv.wg.Add(w - 1)
			for wid := 1; wid < w; wid++ {
				feeds[wid] <- lv
			}
			lv.work(0)
			lv.wg.Wait()
		}
		if err := lv.firstErr(); err != nil {
			return fail(err)
		}
		var drainDone time.Time
		if telem != nil {
			drainDone = time.Now()
		}

		// Barrier: number this level's discoveries, then remap and commit
		// the level's successor lists to final ids.
		merged = merged[:0]
		for wid := 0; wid < w; wid++ {
			merged = append(merged, lv.scratch[wid].news...)
		}
		if err := assign(merged); err != nil {
			return fail(err)
		}
		for _, row := range lv.rows {
			arena := lv.scratch[row.wid].arena[row.start:row.end]
			for _, r := range arena {
				targets = append(targets, finals[r.Dense()])
			}
			if p.canon != nil {
				edgeStates = append(edgeStates, lv.scratch[row.wid].realArena[row.start:row.end]...)
			}
			offsets = append(offsets, len(targets))
		}
		m.NoteFrontier(len(res.states) - levelEnd)
		if telem != nil {
			telem.barrierDone(level, w, drainDone, time.Now())
		}
		if obs != nil {
			// Per-level counters for live progress and the flight recorder:
			// BFS depth, the width just drained, the workers that drained it,
			// and the running state total.
			obs.ObserveLevel(p.op, level, levelEnd-levelStart, w, len(res.states))
		}
		level++
		levelStart = levelEnd
		// The barrier is complete: this is a consistent point to resume from.
		ckStates, ckRows, ckLevel = len(res.states), len(offsets)-1, level
	}

	res.offsets = offsets
	res.targets = targets
	res.edgeStates = edgeStates
	for wid := range lv.scratch {
		res.symCollapsed += lv.scratch[wid].collapsed
	}
	return res, nil
}

// checkpointSnapshot copies the committed prefix of an aborted exploration
// into a Snapshot: the first nStates states (levels up to the last barrier),
// the first nRows adjacency rows, and the level to run next. The copy
// detaches the snapshot from the aborted run's scratch (res.states may hold
// partially assigned states past the barrier).
func checkpointSnapshot(res *exploreResult, offsets []int, targets []int32, edgeStates []*state.State, nStates, nRows, level int) *Snapshot {
	snap := &Snapshot{
		Level:   level,
		States:  append([]*state.State(nil), res.states[:nStates]...),
		Inits:   append([]int(nil), res.inits...),
		Offsets: append([]int(nil), offsets[:nRows+1]...),
		Targets: append([]int32(nil), targets[:offsets[nRows]]...),
	}
	if edgeStates != nil {
		snap.EdgeStates = append([]*state.State(nil), edgeStates[:offsets[nRows]]...)
	}
	return snap
}

// newlyInterned records a state first reached during the current level,
// awaiting its final id at the barrier.
type newlyInterned struct {
	ref store.Ref
	st  *state.State
}

// refRow locates one frontier state's successor refs inside its expanding
// worker's arena.
type refRow struct {
	wid        int32
	start, end int32
}

// workerScratch is one worker's private level scratch, reused across levels
// so steady-state expansion allocates only for genuinely new states. arena
// accumulates the successor refs of every state the worker expanded this
// level (rows index into it); news collects first-interned states for the
// barrier; fps/refs/added are the InternBatch scratch.
type workerScratch struct {
	arena []store.Ref
	news  []newlyInterned
	fps   []uint64
	refs  []store.Ref
	added []bool
	// realArena mirrors arena positionally with each successor's real
	// (pre-canonicalization) state; populated only when canon is active.
	realArena []*state.State
	// canonBuf is the per-expansion scratch for canonicalized successors.
	canonBuf []*state.State
	// collapsed counts successors whose canonical representative differed,
	// accumulated across levels and summed once exploration finishes.
	collapsed int64
	// levelStates/levelSuccs/levelCanonNS tally one level's work for the
	// telemetry "expand" slice (states expanded, successors emitted,
	// canonicalization time); reset by begin. Private to the worker, so the
	// adds are plain (non-atomic) and effectively free.
	levelStates  int64
	levelSuccs   int64
	levelCanonNS int64
}

// levelRun is the shared scratch of one level's worker pool, reused across
// levels (see begin).
type levelRun struct {
	params  *exploreParams
	store   *store.Store
	states  []*state.State // the frontier (current level), final-id order
	rows    []refRow       // per frontier index: where its successor refs live
	scratch []workerScratch
	// committed is explore's barrier-granularity membership probe, handed to
	// every expand call (see exploreParams.expand).
	committed func(*state.State) bool
	// telem is the exploration's telemetry bundle (nil when disabled); level
	// is the BFS level currently being drained, set by explore before begin
	// and read by workers only for telemetry labels.
	telem *exploreTelemetry
	level int
	chunk int64 // frontier indices claimed per atomic increment

	next atomic.Int64 // frontier work index
	stop atomic.Bool
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
}

// begin readies the scratch for one level over the given frontier slice.
func (lv *levelRun) begin(states []*state.State, w int) {
	lv.states = states
	if cap(lv.rows) < len(states) {
		lv.rows = make([]refRow, len(states))
	}
	lv.rows = lv.rows[:len(states)]
	for wid := range lv.scratch {
		ws := &lv.scratch[wid]
		ws.arena = ws.arena[:0]
		ws.news = ws.news[:0]
		ws.realArena = ws.realArena[:0]
		ws.levelStates, ws.levelSuccs, ws.levelCanonNS = 0, 0, 0
	}
	// Chunk so each worker claims ~8 batches per level: big enough to keep
	// the shared counter cold, small enough to balance uneven expansions.
	chunk := int64(len(states) / (8 * w))
	if chunk < 1 {
		chunk = 1
	} else if chunk > 64 {
		chunk = 64
	}
	lv.chunk = chunk
	lv.next.Store(0)
	lv.stop.Store(false)
}

func (lv *levelRun) setErr(err error) {
	lv.mu.Lock()
	if lv.err == nil {
		lv.err = err
	}
	lv.mu.Unlock()
	lv.stop.Store(true)
}

func (lv *levelRun) firstErr() error {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.err
}

// work runs one worker's share of a level. With telemetry attached it brackets
// the drain with one timestamp pair, emitting the worker's per-level "expand"
// slice and busy-time counters; without, it is a direct call into drain.
func (lv *levelRun) work(wid int) {
	if lv.telem == nil {
		lv.drain(wid)
		return
	}
	start := time.Now()
	lv.drain(wid)
	lv.telem.endDrain(wid, lv.level, &lv.scratch[wid], start)
}

// drain drains frontier chunks until the level (or the budget) is exhausted.
// Panics in the expand callback are contained as *engine.EngineError
// carrying the fingerprint of the state being expanded.
func (lv *levelRun) drain(wid int) {
	p := lv.params
	m := p.meter
	ws := &lv.scratch[wid]
	var cur *state.State
	var perr error
	defer func() {
		if perr != nil {
			lv.setErr(perr)
		}
	}()
	defer engine.Capture(&perr, p.op, func() (string, string) {
		if cur != nil {
			return cur.Key(), ""
		}
		return "", ""
	})
	for {
		start := int(lv.next.Add(lv.chunk)) - int(lv.chunk)
		if start >= len(lv.states) {
			return
		}
		end := start + int(lv.chunk)
		if end > len(lv.states) {
			end = len(lv.states)
		}
		for i := start; i < end; i++ {
			if lv.stop.Load() {
				return
			}
			cur = lv.states[i]
			if err := m.Tick(); err != nil {
				lv.setErr(err)
				return
			}
			succs, err := p.expand(cur, lv.committed)
			if err != nil {
				lv.setErr(err)
				return
			}
			ws.levelStates++
			ws.levelSuccs += int64(len(succs))
			// Under canonicalization the graph interns representatives only;
			// the real successors land in realArena, positionally aligned with
			// arena so the barrier can zip ⟨canonical id, real state⟩ per edge.
			interning := succs
			if p.canon != nil {
				var canonStart time.Time
				if lv.telem != nil {
					canonStart = time.Now()
				}
				if cap(ws.canonBuf) < len(succs) {
					ws.canonBuf = make([]*state.State, len(succs))
				}
				cb := ws.canonBuf[:len(succs)]
				for j, t := range succs {
					c := p.canon(t)
					if c != t {
						ws.collapsed++
					}
					cb[j] = c
				}
				if lv.telem != nil {
					ws.levelCanonNS += time.Since(canonStart).Nanoseconds()
				}
				ws.realArena = append(ws.realArena, succs...)
				interning = cb
			}
			if cap(ws.refs) < len(succs) {
				ws.refs = make([]store.Ref, len(succs))
				ws.fps = make([]uint64, len(succs))
				ws.added = make([]bool, len(succs))
			}
			refs := ws.refs[:len(succs)]
			added := ws.added[:len(succs)]
			lv.store.InternBatch(interning, ws.fps[:len(succs)], refs, added)
			rowStart := len(ws.arena)
			ws.arena = append(ws.arena, refs...)
			lv.rows[i] = refRow{wid: int32(wid), start: int32(rowStart), end: int32(len(ws.arena))}
			for j, isNew := range added {
				if !isNew {
					continue
				}
				ws.news = append(ws.news, newlyInterned{ref: refs[j], st: interning[j]})
				if err := m.AddState(); err != nil {
					lv.setErr(err)
					return
				}
				if p.limit > 0 && lv.store.Len() > p.limit {
					lv.setErr(&engine.BudgetError{
						Reason: fmt.Sprintf("%s: state space exceeds MaxStates limit %d", p.limitName, p.limit),
						Stats:  m.Stats(),
					})
					return
				}
			}
			if err := m.AddTransitions(len(succs)); err != nil {
				lv.setErr(err)
				return
			}
		}
	}
}
