package ts

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"opentla/internal/engine"
	"opentla/internal/metrics"
	"opentla/internal/state"
	"opentla/internal/store"
)

// exploreParams configures one frontier exploration (a graph build or a
// monitor product). The expand callback must be deterministic and safe for
// concurrent invocation on distinct states: it is called exactly once per
// reachable state, possibly from several worker goroutines at once.
type exploreParams struct {
	// op names the exploration for contained-panic diagnostics
	// (engine.EngineError.Op), e.g. "ts.Build(counter)".
	op string
	// workers is the goroutine pool size; <= 0 means GOMAXPROCS.
	workers int
	// limit is the legacy per-system MaxStates cap; limitName prefixes its
	// BudgetError reason ("system X", "monitor product").
	limit     int
	limitName string
	meter     *engine.Meter
	// inits seeds the exploration, in a deterministic order.
	inits []*state.State
	// expand returns the successor states of s (duplicates allowed; the
	// store dedups). Successor order must be deterministic in s. The
	// committed callback reports whether a state already has a final id
	// (assigned at a previous level barrier) — reduction uses it for the
	// ample-set cycle proviso; expansions that don't care may ignore it.
	expand func(s *state.State, committed func(*state.State) bool) ([]*state.State, error)
	// canon, when non-nil, maps every state to the canonical representative
	// of its symmetry orbit. Seeds and successors are canonicalized before
	// interning, so the graph holds only representatives; the real (pre-
	// canonicalization) successor of every edge is preserved alongside the
	// canonical target id in edgeStates, keeping each recorded edge a
	// genuine step of the system.
	canon func(*state.State) *state.State
	// resume, when non-nil, restores a checkpoint: the committed states,
	// inits, and adjacency rows are adopted verbatim (without consuming
	// state budget — restored work was paid for by the interrupted run) and
	// the BFS continues from the saved frontier. inits is ignored.
	resume *Snapshot
	// onCheckpoint, when non-nil, receives a checkpoint snapshot of the
	// last fully committed level barrier if exploration aborts on budget
	// exhaustion. Mid-level partial work is discarded — checkpoints have
	// level granularity, so a resumed run re-expands the saved frontier and
	// rediscovers exactly the same states.
	onCheckpoint func(*Snapshot)
}

// exploreResult is the finalized, deterministic exploration outcome.
type exploreResult struct {
	states  []*state.State // numbered level-by-level, fingerprint-sorted within a level
	inits   []int          // final ids of params.inits, in seed order (deduped to first occurrence)
	idx     *store.Index   // state -> final id lookup for the finished graph
	offsets []int          // CSR row offsets, len(states)+1
	targets []int32        // CSR adjacency, offsets[i]:offsets[i+1] are i's successors
	// edgeStates, parallel to targets, holds each edge's real successor
	// state (nil when exploration ran without canon: the canonical target
	// IS the real successor).
	edgeStates []*state.State
	// symCollapsed counts successor and seed slots redirected to a
	// different canonical representative.
	symCollapsed int64
}

// explore runs a level-synchronous parallel frontier BFS over the states
// reachable from params.inits.
//
// Determinism guarantee: the returned numbering, initial-state ids, and
// adjacency are byte-identical for every worker count. States are interned
// concurrently into a sharded store (arrival order is scheduling-dependent),
// but final ids are assigned only at level barriers: the states first
// reached during a level are numbered in (fingerprint, Key) order — ties are
// genuine 64-bit collisions between distinct states, broken by the canonical
// Key string. A state's level is its BFS distance from the seed set, which
// no schedule can change, so the numbering depends only on the graph itself.
// Successor lists are produced by the deterministic expand callback and
// recorded per source state, preserving callback order.
//
// The barrier itself is parallel (the PR 9 rebuild — before it, numbering,
// remapping, and CSR commit ran single-threaded at every level and capped
// the whole exploration at ~1x sequential; Amdahl). Each level runs three
// phases on the same persistent worker pool:
//
//  1. drain: workers claim frontier chunks, expand states, dedup successors
//     against the committed index (states numbered at earlier barriers
//     resolve to their final id lock-free, without touching the store), and
//     batch-intern only the remainder. Newly interned states land in
//     per-worker per-partition buckets keyed by store.Partition(fp) — the
//     top fingerprint bits — so the barrier never re-buckets.
//  2. seal (single-threaded, deliberately tiny): per-partition counts are
//     summed into base offsets, the CSR offsets row is extended by a prefix
//     sum of known row lengths, and the states/finals/targets arrays are
//     grown. Pure arithmetic — no sorting, no hashing, no per-edge work.
//  3. commit (parallel): workers sort and number whole fingerprint
//     partitions against their precomputed bases (writing disjoint index
//     shards, finals slots, and states slots), then remap and commit their
//     own drain rows into the preallocated CSR range. Partition order is
//     fingerprint order, so concatenating sorted partitions reproduces the
//     exact global (fingerprint, Key) sort a single thread would produce.
func explore(p exploreParams) (*exploreResult, error) {
	m := p.meter
	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	interned := store.New()
	// Telemetry attaches only when the meter's observer exposes a tracer or a
	// metric registry (internal/obs wires them in behind -trace/-metrics-out);
	// otherwise telem stays nil and the hot paths below pay one pointer check.
	// Store contention counting is gated the same way, behind an atomic
	// pointer inside the store.
	telem := newExploreTelemetry(m, workers)
	if sm := store.NewMetrics(metrics.FromMeter(m)); sm != nil {
		interned.SetMetrics(sm)
		defer sm.Flush()
	}
	res := &exploreResult{idx: store.NewIndex()}
	// Incrementally built CSR adjacency, committed one frontier row at a
	// time at level barriers. offsets always carries the leading 0, so
	// len(offsets)-1 is the committed row count. edgeStates (canon runs
	// only) grows in lockstep with targets.
	offsets := []int{0}
	var targets []int32
	var edgeStates []*state.State

	// committed reports whether a state's canonical representative already
	// has a final id. The index is written only at level barriers (in
	// parallel, but never overlapping a drain) and by the single-threaded
	// seeding/resume paths, and read here from workers between barriers, so
	// the probe is race-free and — because barriers are schedule-independent
	// — deterministic at any worker count.
	committed := func(t *state.State) bool {
		if p.canon != nil {
			t = p.canon(t)
		}
		_, ok := res.idx.Get(t)
		return ok
	}

	// finals maps interned refs (via their dense encoding) to final ids;
	// written at level barriers (disjoint slots per partition) and by the
	// single-threaded seeding below. A flat slice instead of a map: the
	// barrier does one remap lookup per edge, and dense refs grow with the
	// state count.
	finals := make([]int32, 0, 1024)
	ensureFinals := func(d int) {
		if d < len(finals) {
			return
		}
		n := len(finals)
		if d >= cap(finals) {
			grown := make([]int32, d+1, max(2*cap(finals), d+1))
			copy(grown, finals)
			finals = grown
		} else {
			finals = finals[:d+1]
		}
		for i := n; i <= d; i++ {
			finals[i] = -1
		}
	}
	setFinal := func(ref store.Ref, id int) {
		d := ref.Dense()
		ensureFinals(d)
		finals[d] = int32(id)
	}

	// Checkpoint bookkeeping: the state count, committed row count, and next
	// level as of the last clean barrier. ckStates < 0 means no consistent
	// point exists yet (mid-seeding).
	ckStates, ckRows, ckLevel := -1, 0, 0
	// fail wraps an abort: budget exhaustion emits a checkpoint of the last
	// clean barrier so a later run can resume instead of restarting.
	fail := func(err error) (*exploreResult, error) {
		if p.onCheckpoint != nil && ckStates >= 0 {
			var be *engine.BudgetError
			if errors.As(err, &be) {
				p.onCheckpoint(checkpointSnapshot(res, offsets, targets, edgeStates, ckStates, ckRows, ckLevel))
			}
		}
		return nil, err
	}

	// assignSerial numbers the seed states (fingerprint-sorted, Key-
	// tiebroken — total and schedule-independent). Level barriers use the
	// partitioned parallel path below; seeds are few and arrive before the
	// pool exists.
	assignSerial := func(news []newlyInterned) error {
		sort.Slice(news, func(i, j int) bool {
			if news[i].fp != news[j].fp {
				return news[i].fp < news[j].fp
			}
			return news[i].st.Key() < news[j].st.Key()
		})
		for _, ns := range news {
			id := len(res.states)
			res.states = append(res.states, ns.st)
			res.idx.Put(ns.st, id)
			setFinal(ns.ref, id)
		}
		if p.limit > 0 && len(res.states) > p.limit {
			return &engine.BudgetError{
				Reason: fmt.Sprintf("%s: state space exceeds MaxStates limit %d", p.limitName, p.limit),
				Stats:  m.Stats(),
			}
		}
		return nil
	}

	levelStart, level := 0, 0
	if p.resume != nil {
		// Restore the checkpoint: adopt the committed numbering, inits, and
		// adjacency verbatim. Interning in final-id order rebuilds finals and
		// the index deterministically; restored states bypass the meter so
		// budgets govern only new work, letting repeated bounded runs make
		// incremental progress.
		for i, s := range p.resume.States {
			ref, _ := interned.Intern(s)
			res.states = append(res.states, s)
			res.idx.Put(s, i)
			setFinal(ref, i)
		}
		res.inits = append(res.inits, p.resume.Inits...)
		rows := p.resume.Rows()
		offsets = append(offsets[:1], p.resume.Offsets[1:]...)
		targets = append(targets, p.resume.Targets...)
		edgeStates = append(edgeStates, p.resume.EdgeStates...)
		levelStart, level = rows, p.resume.Level
		ckStates, ckRows, ckLevel = len(res.states), rows, level
	} else {
		// Seed level 0 (canonical representatives when canon is active: the
		// graph never holds a non-representative state).
		var seedNews []newlyInterned
		seedRefs := make([]store.Ref, 0, len(p.inits))
		for _, s := range p.inits {
			if p.canon != nil {
				if c := p.canon(s); c != s {
					res.symCollapsed++
					s = c
				}
			}
			ref, added := interned.Intern(s)
			if added {
				seedNews = append(seedNews, newlyInterned{ref: ref, fp: s.Fingerprint(), st: s})
				if err := m.AddState(); err != nil {
					return nil, err
				}
			}
			seedRefs = append(seedRefs, ref)
		}
		if err := assignSerial(seedNews); err != nil {
			return nil, err
		}
		for _, ref := range seedRefs {
			res.inits = append(res.inits, int(finals[ref.Dense()]))
		}
		ckStates, ckRows, ckLevel = len(res.states), 0, 0
	}

	// The level scratch persists across levels: one levelRun handed to the
	// pool each phase round, per-worker arenas that keep their capacity.
	lv := &levelRun{
		params:    &p,
		store:     interned,
		scratch:   make([]workerScratch, workers),
		committed: committed,
		lookup:    res.idx.Get,
		telem:     telem,
	}

	// Persistent pool: workers 1..n-1 live for the whole exploration and
	// receive one levelRun per phase round on a private channel (so each
	// runs a phase exactly once); the coordinating goroutine doubles as
	// worker 0. One level is up to three rounds: drain, then — after the
	// single-threaded seal — the two commit phases.
	var feeds []chan *levelRun
	if workers > 1 {
		feeds = make([]chan *levelRun, workers)
		for wid := 1; wid < workers; wid++ {
			feeds[wid] = make(chan *levelRun)
			go func(wid int, feed chan *levelRun) {
				for run := range feed {
					run.work(wid)
					run.wg.Done()
				}
			}(wid, feeds[wid])
		}
		defer func() {
			for wid := 1; wid < workers; wid++ {
				close(feeds[wid])
			}
		}()
	}
	// runRound executes one phase on w workers: the coordinator always
	// doubles as worker 0, so a sequential run never touches a channel.
	runRound := func(phase int, w int) {
		lv.phase = phase
		if w <= 1 {
			lv.work(0)
			return
		}
		lv.wg.Add(w - 1)
		for wid := 1; wid < w; wid++ {
			feeds[wid] <- lv
		}
		lv.work(0)
		lv.wg.Wait()
	}

	obs := m.Observer()
	for levelStart < len(res.states) {
		levelEnd := len(res.states)
		n := levelEnd - levelStart
		w := workers
		if w > n {
			w = n
		}
		lv.level = level
		lv.begin(res.states[levelStart:levelEnd], w)
		runRound(phaseDrain, w)
		if err := lv.firstErr(); err != nil {
			return fail(err)
		}
		var drainDone time.Time
		if telem != nil {
			drainDone = time.Now()
		}

		// Seal (single-threaded): partition bases, array growth, and the
		// CSR offsets prefix sum — the only serial section of the barrier.
		total := 0
		maxDense := -1
		for pi := 0; pi < store.NumPartitions; pi++ {
			lv.bases[pi] = levelEnd + total
			for wid := 0; wid < w; wid++ {
				total += len(lv.scratch[wid].newsPart[pi])
			}
		}
		for wid := 0; wid < w; wid++ {
			if d := lv.scratch[wid].maxDense; d > maxDense {
				maxDense = d
			}
		}
		if p.limit > 0 && levelEnd+total > p.limit {
			return fail(&engine.BudgetError{
				Reason: fmt.Sprintf("%s: state space exceeds MaxStates limit %d", p.limitName, p.limit),
				Stats:  m.Stats(),
			})
		}
		if maxDense >= 0 {
			ensureFinals(maxDense)
		}
		res.states = grow(res.states, total)
		lv.rowBase = len(offsets) - 1
		off := offsets[lv.rowBase]
		for i := range lv.rows {
			off += int(lv.rows[i].end - lv.rows[i].start)
			offsets = append(offsets, off)
		}
		targets = grow(targets, off-len(targets))
		if p.canon != nil {
			edgeStates = grow(edgeStates, off-len(edgeStates))
		}
		lv.finals, lv.states, lv.idx = finals, res.states, res.idx
		lv.offsets, lv.targets, lv.edgeStates = offsets, targets, edgeStates
		if telem != nil {
			telem.barrierDone(level, w, drainDone, time.Now())
		}

		// Commit (parallel): number the fingerprint partitions against the
		// sealed bases, then remap and write each worker's own CSR rows.
		// The round boundary between the two phases is the happens-before
		// edge that publishes every partition's finals to every remapper.
		runRound(phaseAssign, w)
		if err := lv.firstErr(); err != nil {
			return fail(err)
		}
		runRound(phaseRows, w)
		if err := lv.firstErr(); err != nil {
			return fail(err)
		}

		m.NoteFrontier(total)
		if telem != nil {
			telem.levelDone()
		}
		if obs != nil {
			// Per-level counters for live progress and the flight recorder:
			// BFS depth, the width just drained, the workers that drained it,
			// and the running state total.
			obs.ObserveLevel(p.op, level, levelEnd-levelStart, w, len(res.states))
		}
		level++
		levelStart = levelEnd
		// The barrier is complete: this is a consistent point to resume from.
		ckStates, ckRows, ckLevel = len(res.states), len(offsets)-1, level
	}

	res.offsets = offsets
	res.targets = targets
	res.edgeStates = edgeStates
	for wid := range lv.scratch {
		res.symCollapsed += lv.scratch[wid].collapsed
	}
	return res, nil
}

// grow extends s by n zeroed elements. The slices it serves only ever grow,
// so reslicing inside capacity exposes never-written (zero) memory.
func grow[T any](s []T, n int) []T {
	need := len(s) + n
	if need <= cap(s) {
		return s[:need]
	}
	out := make([]T, need, max(2*cap(s), need))
	copy(out, s)
	return out
}

// checkpointSnapshot copies the committed prefix of an aborted exploration
// into a Snapshot: the first nStates states (levels up to the last barrier),
// the first nRows adjacency rows, and the level to run next. The copy
// detaches the snapshot from the aborted run's scratch (res.states may hold
// partially assigned states past the barrier).
// checkpointSnapshot materializes resumable cache artifacts; the arrays it
// copies are already in deterministic commit order and must stay that way.
//
// aglint:deterministic
func checkpointSnapshot(res *exploreResult, offsets []int, targets []int32, edgeStates []*state.State, nStates, nRows, level int) *Snapshot {
	snap := &Snapshot{
		Level:   level,
		States:  append([]*state.State(nil), res.states[:nStates]...),
		Inits:   append([]int(nil), res.inits...),
		Offsets: append([]int(nil), offsets[:nRows+1]...),
		Targets: append([]int32(nil), targets[:offsets[nRows]]...),
	}
	if edgeStates != nil {
		snap.EdgeStates = append([]*state.State(nil), edgeStates[:offsets[nRows]]...)
	}
	return snap
}

// newlyInterned records a state first reached during the current level,
// awaiting its final id at the barrier. fp caches the fingerprint the
// partition sort orders by.
type newlyInterned struct {
	ref store.Ref
	fp  uint64
	st  *state.State
}

// refRow locates one frontier state's successor entries inside its expanding
// worker's arena.
type refRow struct {
	start, end int32
}

// Arena entries encode either an interned ref awaiting its final id, or —
// for successors the drain already resolved against the committed index —
// the final id itself, bitwise-complemented so the two are distinguishable
// by sign. The committed-dedup fast path is what keeps already-explored
// successors (the bulk of a BFS level's edges) off the store's shard locks
// and out of the barrier's remap-by-ref volume.
func arenaRef(r store.Ref) int64 { return int64(r) }
func arenaFinal(id int) int64    { return ^int64(id) }
func arenaResolve(v int64, finals []int32) int32 {
	if v < 0 {
		return int32(^v)
	}
	return finals[store.Ref(v).Dense()]
}

// Barrier phases, run as pool rounds (see explore).
const (
	phaseDrain = iota
	phaseAssign
	phaseRows
)

// workerScratch is one worker's private level scratch, reused across levels
// so steady-state expansion allocates only for genuinely new states. arena
// accumulates the successor entries of every state the worker expanded this
// level (rows index into it); newsPart buckets first-interned states by
// fingerprint partition for the barrier; fps/refs/added are the InternBatch
// scratch.
type workerScratch struct {
	arena  []int64
	rowIdx []int32 // frontier indices this worker expanded (its commit rows)
	pend   []int32 // per-expansion scratch: successor slots needing interning
	batch  []*state.State
	fps    []uint64
	refs   []store.Ref
	added  []bool
	// newsPart[p] holds the states this worker interned first whose
	// fingerprint lands in partition p; maxDense is the largest dense ref
	// encoding among them (for the seal's one ensureFinals call).
	newsPart [store.NumPartitions][]newlyInterned
	maxDense int
	// merge is the commit-phase scratch a worker sorts partitions in.
	merge []newlyInterned
	// realArena mirrors arena positionally with each successor's real
	// (pre-canonicalization) state; populated only when canon is active.
	realArena []*state.State
	// canonBuf is the per-expansion scratch for canonicalized successors.
	canonBuf []*state.State
	// collapsed counts successors whose canonical representative differed,
	// accumulated across levels and summed once exploration finishes.
	collapsed int64
	// levelStates/levelSuccs/levelCanonNS tally one level's work for the
	// telemetry "expand" slice (states expanded, successors emitted,
	// canonicalization time); reset by begin. Private to the worker, so the
	// adds are plain (non-atomic) and effectively free.
	levelStates  int64
	levelSuccs   int64
	levelCanonNS int64
}

// levelRun is the shared scratch of one level's worker pool, reused across
// levels (see begin).
type levelRun struct {
	params  *exploreParams
	store   *store.Store
	states  []*state.State // the frontier (current level), final-id order
	rows    []refRow       // per frontier index: where its successor entries live
	scratch []workerScratch
	// committed is explore's barrier-granularity membership probe, handed to
	// every expand call (see exploreParams.expand); lookup is the underlying
	// index probe the drain deduplicates successors through.
	committed func(*state.State) bool
	lookup    func(*state.State) (int, bool)
	// telem is the exploration's telemetry bundle (nil when disabled); level
	// is the BFS level currently being drained, set by explore before begin
	// and read by workers only for telemetry labels.
	telem *exploreTelemetry
	level int
	w     int   // workers participating in the current level
	phase int   // current pool round (phaseDrain/phaseAssign/phaseRows)
	chunk int64 // frontier indices claimed per atomic increment

	// Commit-phase context, sealed by the coordinator between the drain and
	// assign rounds (the pool channel provides the happens-before edge):
	// partition base ids, the grown finals/states arrays, the index, and
	// the preallocated CSR arrays with this level's first offsets row.
	bases      [store.NumPartitions]int
	finals     []int32
	idx        *store.Index
	offsets    []int
	targets    []int32
	edgeStates []*state.State
	rowBase    int

	next atomic.Int64 // frontier work index
	stop atomic.Bool
	wg   sync.WaitGroup
	mu   sync.Mutex
	err  error
}

// begin readies the scratch for one level over the given frontier slice.
func (lv *levelRun) begin(states []*state.State, w int) {
	lv.states = states
	lv.w = w
	if cap(lv.rows) < len(states) {
		lv.rows = make([]refRow, len(states))
	}
	lv.rows = lv.rows[:len(states)]
	for wid := range lv.scratch {
		ws := &lv.scratch[wid]
		ws.arena = ws.arena[:0]
		ws.rowIdx = ws.rowIdx[:0]
		ws.realArena = ws.realArena[:0]
		for pi := range ws.newsPart {
			ws.newsPart[pi] = ws.newsPart[pi][:0]
		}
		ws.maxDense = -1
		ws.levelStates, ws.levelSuccs, ws.levelCanonNS = 0, 0, 0
	}
	// Chunk so each worker claims ~8 batches per level: big enough to keep
	// the shared counter cold, small enough to balance uneven expansions.
	chunk := int64(len(states) / (8 * w))
	if chunk < 1 {
		chunk = 1
	} else if chunk > 64 {
		chunk = 64
	}
	lv.chunk = chunk
	lv.next.Store(0)
	lv.stop.Store(false)
}

func (lv *levelRun) setErr(err error) {
	lv.mu.Lock()
	if lv.err == nil {
		lv.err = err
	}
	lv.mu.Unlock()
	lv.stop.Store(true)
}

func (lv *levelRun) firstErr() error {
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return lv.err
}

// work runs one worker's share of the current phase round. With telemetry
// attached each phase is bracketed with one timestamp pair, emitting the
// worker's per-level "expand" or "commit" slices; without, it is a direct
// call into the phase body.
func (lv *levelRun) work(wid int) {
	switch lv.phase {
	case phaseDrain:
		if lv.telem == nil {
			lv.drain(wid)
			return
		}
		start := time.Now()
		lv.drain(wid)
		lv.telem.endDrain(wid, lv.level, &lv.scratch[wid], start)
	case phaseAssign:
		if lv.telem == nil {
			lv.assignPartitions(wid)
			return
		}
		start := time.Now()
		lv.assignPartitions(wid)
		lv.telem.endCommitPhase(wid, lv.level, start)
	case phaseRows:
		if lv.telem == nil {
			lv.commitRows(wid)
			return
		}
		start := time.Now()
		lv.commitRows(wid)
		lv.telem.endCommitPhase(wid, lv.level, start)
	}
}

// assignPartitions numbers this worker's share of the fingerprint
// partitions: for each owned partition, merge every drain worker's bucket,
// sort by (fingerprint, Key), and assign final ids from the sealed base.
// Distinct partitions touch disjoint index shards, finals slots, and states
// slots, so the phase is write-race-free by construction; panics are
// contained like drain panics.
func (lv *levelRun) assignPartitions(wid int) {
	var perr error
	defer func() {
		if perr != nil {
			lv.setErr(perr)
		}
	}()
	defer engine.Capture(&perr, lv.params.op, func() (string, string) { return "", "" })
	ws := &lv.scratch[wid]
	for pi := wid; pi < store.NumPartitions; pi += lv.w {
		merge := ws.merge[:0]
		for src := 0; src < lv.w; src++ {
			merge = append(merge, lv.scratch[src].newsPart[pi]...)
		}
		if len(merge) == 0 {
			continue
		}
		sort.Slice(merge, func(i, j int) bool {
			if merge[i].fp != merge[j].fp {
				return merge[i].fp < merge[j].fp
			}
			return merge[i].st.Key() < merge[j].st.Key()
		})
		base := lv.bases[pi]
		for k, ns := range merge {
			id := base + k
			lv.states[id] = ns.st
			lv.idx.Put(ns.st, id)
			lv.finals[ns.ref.Dense()] = int32(id)
		}
		ws.merge = merge[:0]
	}
}

// commitRows remaps this worker's own drain rows to final ids and writes
// them into the sealed CSR range. Every row's span [offsets[rowBase+i],
// offsets[rowBase+i+1]) is owned by exactly one worker, so writes are
// disjoint; finals reads see every partition via the round barrier between
// assign and rows.
// commitRows writes each row's successor ids at their final positions; the
// graph bytes it produces are replay-compared and cached, so the path must
// stay free of randomized iteration.
//
// aglint:deterministic
func (lv *levelRun) commitRows(wid int) {
	var perr error
	defer func() {
		if perr != nil {
			lv.setErr(perr)
		}
	}()
	defer engine.Capture(&perr, lv.params.op, func() (string, string) { return "", "" })
	ws := &lv.scratch[wid]
	canon := lv.params.canon != nil
	for _, ri := range ws.rowIdx {
		i := int(ri)
		row := lv.rows[i]
		dst := lv.targets[lv.offsets[lv.rowBase+i]:lv.offsets[lv.rowBase+i+1]]
		arena := ws.arena[row.start:row.end]
		for n, v := range arena {
			dst[n] = arenaResolve(v, lv.finals)
		}
		if canon {
			copy(lv.edgeStates[lv.offsets[lv.rowBase+i]:], ws.realArena[row.start:row.end])
		}
	}
}

// drain drains frontier chunks until the level (or the budget) is exhausted.
// Panics in the expand callback are contained as *engine.EngineError
// carrying the fingerprint of the state being expanded.
func (lv *levelRun) drain(wid int) {
	p := lv.params
	m := p.meter
	ws := &lv.scratch[wid]
	var cur *state.State
	var perr error
	defer func() {
		if perr != nil {
			lv.setErr(perr)
		}
	}()
	defer engine.Capture(&perr, p.op, func() (string, string) {
		if cur != nil {
			return cur.Key(), ""
		}
		return "", ""
	})
	for {
		start := int(lv.next.Add(lv.chunk)) - int(lv.chunk)
		if start >= len(lv.states) {
			return
		}
		end := start + int(lv.chunk)
		if end > len(lv.states) {
			end = len(lv.states)
		}
		for i := start; i < end; i++ {
			if lv.stop.Load() {
				return
			}
			cur = lv.states[i]
			if err := m.Tick(); err != nil {
				lv.setErr(err)
				return
			}
			succs, err := p.expand(cur, lv.committed)
			if err != nil {
				lv.setErr(err)
				return
			}
			ws.levelStates++
			ws.levelSuccs += int64(len(succs))
			// Under canonicalization the graph interns representatives only;
			// the real successors land in realArena, positionally aligned with
			// arena so the barrier can zip ⟨canonical id, real state⟩ per edge.
			interning := succs
			if p.canon != nil {
				var canonStart time.Time
				if lv.telem != nil {
					canonStart = time.Now()
				}
				if cap(ws.canonBuf) < len(succs) {
					ws.canonBuf = make([]*state.State, len(succs))
				}
				cb := ws.canonBuf[:len(succs)]
				for j, t := range succs {
					c := p.canon(t)
					if c != t {
						ws.collapsed++
					}
					cb[j] = c
				}
				if lv.telem != nil {
					ws.levelCanonNS += time.Since(canonStart).Nanoseconds()
				}
				ws.realArena = append(ws.realArena, succs...)
				interning = cb
			}
			// Dedup against the committed index before interning: successors
			// already numbered at an earlier barrier resolve lock-free to
			// their final id, so only frontier-fresh states reach the store.
			rowStart := len(ws.arena)
			pend := ws.pend[:0]
			batch := ws.batch[:0]
			for j, t := range interning {
				if id, ok := lv.lookup(t); ok {
					ws.arena = append(ws.arena, arenaFinal(id))
					continue
				}
				ws.arena = append(ws.arena, 0)
				pend = append(pend, int32(j))
				batch = append(batch, t)
			}
			if len(batch) > 0 {
				if cap(ws.refs) < len(batch) {
					ws.refs = make([]store.Ref, len(batch))
					ws.fps = make([]uint64, len(batch))
					ws.added = make([]bool, len(batch))
				}
				refs := ws.refs[:len(batch)]
				added := ws.added[:len(batch)]
				fps := ws.fps[:len(batch)]
				lv.store.InternBatch(batch, fps, refs, added)
				for bi, j := range pend {
					ws.arena[rowStart+int(j)] = arenaRef(refs[bi])
					if !added[bi] {
						continue
					}
					ws.newsPart[store.Partition(fps[bi])] = append(
						ws.newsPart[store.Partition(fps[bi])],
						newlyInterned{ref: refs[bi], fp: fps[bi], st: batch[bi]})
					if d := refs[bi].Dense(); d > ws.maxDense {
						ws.maxDense = d
					}
					if err := m.AddState(); err != nil {
						lv.setErr(err)
						return
					}
					if p.limit > 0 && lv.store.Len() > p.limit {
						lv.setErr(&engine.BudgetError{
							Reason: fmt.Sprintf("%s: state space exceeds MaxStates limit %d", p.limitName, p.limit),
							Stats:  m.Stats(),
						})
						return
					}
				}
			}
			ws.pend, ws.batch = pend, batch
			ws.rowIdx = append(ws.rowIdx, int32(i))
			lv.rows[i] = refRow{start: int32(rowStart), end: int32(len(ws.arena))}
			if err := m.AddTransitions(len(succs)); err != nil {
				lv.setErr(err)
				return
			}
		}
	}
}
