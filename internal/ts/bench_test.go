package ts

import (
	"testing"

	"opentla/internal/form"
	"opentla/internal/value"
)

func BenchmarkBuildCounterGraph(b *testing.B) {
	sys := counterSystem(7)
	sys.Domains = map[string][]value.Value{"x": value.Ints(0, 7)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonitorProduct(b *testing.B) {
	sys := counterSystem(7)
	sys.Domains = map[string][]value.Value{"x": value.Ints(0, 7)}
	g, err := sys.Build()
	if err != nil {
		b.Fatal(err)
	}
	mon := PlusMonitor("$plus", form.TrueE,
		[]form.Expr{form.Lt(form.PrimedVar("x"), form.IntC(4))},
		form.VarTuple("x"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Product(g, []*Monitor{mon}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSCCs(b *testing.B) {
	sys := counterSystem(7)
	sys.Domains = map[string][]value.Value{"x": value.Ints(0, 7)}
	g, err := sys.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.SCCs(nil, nil); len(got) == 0 {
			b.Fatal("no SCCs")
		}
	}
}
