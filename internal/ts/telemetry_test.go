package ts

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"opentla/internal/engine"
	"opentla/internal/metrics"
	"opentla/internal/obs"
	"opentla/internal/reduce"
	"opentla/internal/trace"
)

// telemetryMeter returns a meter whose observer carries a fresh tracer and
// registry, the way the CLIs wire -trace / -metrics-out.
func telemetryMeter() (*engine.Meter, *trace.Tracer, *metrics.Registry) {
	m := engine.NoLimit()
	rec := obs.New(m)
	tr := trace.New()
	rec.SetTracer(tr)
	reg := metrics.NewRegistry()
	rec.SetMetrics(reg)
	return m, tr, reg
}

// decodeTrace parses the Chrome Trace Event JSON a tracer renders.
func decodeTrace(t *testing.T, tr *trace.Tracer) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var wire struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return wire.TraceEvents
}

func snapshotValue(reg *metrics.Registry, name string) (int64, bool) {
	for _, p := range reg.Snapshot() {
		if p.Name == name && p.Labels == "" {
			if p.Type == "histogram" {
				return p.Count, true
			}
			return p.Value, true
		}
	}
	return 0, false
}

// TestBuildEmitsWorkerTracks pins the tentpole trace contract: a 4-worker
// build of a frontier wide enough for every worker produces one named track
// per worker that did work (idle workers' tracks are suppressed at write
// time), a barrier track, per-level "expand" slices carrying state tallies,
// "commit" slices for both the serial seal and the parallel commit phases,
// and the exploration metrics — without perturbing the graph.
func TestBuildEmitsWorkerTracks(t *testing.T) {
	const workers = 4
	m, tr, reg := telemetryMeter()
	sys := pairSystem(4)
	sys.Workers = workers
	g, err := sys.BuildWith(m)
	if err != nil {
		t.Fatal(err)
	}

	plain := pairSystem(4)
	plain.Workers = workers
	gp, err := plain.Build()
	if err != nil {
		t.Fatal(err)
	}
	if signature(g) != signature(gp) {
		t.Fatalf("telemetry changed the built graph")
	}

	events := decodeTrace(t, tr)
	threads := map[string]bool{}
	tids := map[string]float64{}
	var expandSlices, waitSlices, commitSlices int
	for _, e := range events {
		if e["ph"] == "M" && e["name"] == "thread_name" {
			name := e["args"].(map[string]any)["name"].(string)
			threads[name] = true
			tids[name], _ = e["tid"].(float64)
		}
		switch e["name"] {
		case "expand":
			expandSlices++
			args := e["args"].(map[string]any)
			for _, k := range []string{"level", "states", "succs", "canon_ns"} {
				if _, ok := args[k]; !ok {
					t.Errorf("expand slice missing arg %q: %v", k, args)
				}
			}
		case "barrier-wait":
			waitSlices++
		case "commit":
			commitSlices++
		}
	}
	seen := map[float64]bool{}
	for wid := 0; wid < workers; wid++ {
		name := "worker " + string(rune('0'+wid))
		if !threads[name] {
			t.Errorf("missing track %q (have %v)", name, threads)
			continue
		}
		if seen[tids[name]] {
			t.Errorf("track %q shares tid %v with another track", name, tids[name])
		}
		seen[tids[name]] = true
	}
	if !threads["barrier"] {
		t.Errorf("missing barrier track")
	}
	if expandSlices == 0 || waitSlices == 0 || commitSlices == 0 {
		t.Errorf("want expand/barrier-wait/commit slices, got %d/%d/%d",
			expandSlices, waitSlices, commitSlices)
	}

	// The exploration metrics must be registered and consistent.
	if v, ok := snapshotValue(reg, "opentla_levels_total"); !ok || v == 0 {
		t.Errorf("opentla_levels_total = %d, %v", v, ok)
	}
	if v, ok := snapshotValue(reg, "opentla_barrier_wait_nanoseconds"); !ok || v == 0 {
		t.Errorf("opentla_barrier_wait_nanoseconds count = %d, %v", v, ok)
	}
	if v, ok := snapshotValue(reg, "opentla_workers"); !ok || v != workers {
		t.Errorf("opentla_workers = %d, want %d", v, workers)
	}
	if v, ok := snapshotValue(reg, "opentla_store_lock_acquisitions_total"); !ok || v == 0 {
		t.Errorf("store lock acquisitions = %d, %v (store metrics not attached?)", v, ok)
	}
	if v, ok := snapshotValue(reg, "opentla_barrier_parallel_commit_nanoseconds_total"); !ok || v == 0 {
		t.Errorf("opentla_barrier_parallel_commit_nanoseconds_total = %d, %v", v, ok)
	}
}

// TestBuildMetricsOnlyNeedsNoTracer checks the -metrics-out-without--trace
// path: counters fill in with no tracer attached.
func TestBuildMetricsOnlyNeedsNoTracer(t *testing.T) {
	m := engine.NoLimit()
	rec := obs.New(m)
	reg := metrics.NewRegistry()
	rec.SetMetrics(reg)
	sys := pairSystem(3)
	sys.Workers = 2
	if _, err := sys.BuildWith(m); err != nil {
		t.Fatal(err)
	}
	if v, ok := snapshotValue(reg, "opentla_worker_busy_nanoseconds_total"); !ok || v == 0 {
		t.Errorf("worker busy time = %d, %v", v, ok)
	}
	if v, ok := snapshotValue(reg, "opentla_levels_total"); !ok || v == 0 {
		t.Errorf("levels = %d, %v", v, ok)
	}
}

// TestReductionMetricsExported checks that a POR build lands ample hit/miss
// counters in the registry (the reduce instrumentation seam).
func TestReductionMetricsExported(t *testing.T) {
	m, _, reg := telemetryMeter()
	sys := pairSystem(4)
	sys.Workers = 2
	sys.Reduce = &reduce.Config{Options: reduce.Options{POR: true}}
	if _, err := sys.BuildWith(m); err != nil {
		t.Fatal(err)
	}
	ample, okA := snapshotValue(reg, "opentla_reduce_ample_states_total")
	full, okF := snapshotValue(reg, "opentla_reduce_full_states_total")
	if !okA || !okF {
		t.Fatalf("reduce counters not registered (ample=%v full=%v)", okA, okF)
	}
	if ample+full == 0 {
		t.Errorf("a POR build must classify every expanded state: ample=%d full=%d", ample, full)
	}
}

// TestCacheMetricsExported checks the cache instrumentation: a cold build
// counts a miss and a load/store latency pair; a warm rebuild counts a hit.
func TestCacheMetricsExported(t *testing.T) {
	cache := newMemCache()
	build := func() *metrics.Registry {
		m, tr, reg := telemetryMeter()
		sys := counterSystem(3)
		sys.Cache = cache
		if _, err := sys.BuildWith(m); err != nil {
			t.Fatal(err)
		}
		// The cache track must exist on the trace whenever cache ops ran.
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), `"cache"`) {
			t.Errorf("trace missing cache track:\n%s", buf.String())
		}
		return reg
	}

	cold := build()
	if v, _ := snapshotValue(cold, "opentla_cache_misses_total"); v != 1 {
		t.Errorf("cold build misses = %d, want 1", v)
	}
	if v, _ := snapshotValue(cold, "opentla_cache_load_nanoseconds"); v != 1 {
		t.Errorf("cold build load observations = %d, want 1", v)
	}
	if v, _ := snapshotValue(cold, "opentla_cache_store_nanoseconds"); v != 1 {
		t.Errorf("cold build store observations = %d, want 1", v)
	}

	warm := build()
	if v, _ := snapshotValue(warm, "opentla_cache_hits_total"); v != 1 {
		t.Errorf("warm build hits = %d, want 1", v)
	}
	if v, _ := snapshotValue(warm, "opentla_cache_misses_total"); v != 0 {
		t.Errorf("warm build misses = %d, want 0", v)
	}
}
