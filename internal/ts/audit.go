package ts

import (
	"fmt"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/store"
)

// ExecDivergence reports a reachable state where an action's executable
// successor generator (Exec) disagrees with its declarative definition
// (Def): the Def permits an owned-variable update that the generator never
// produces. This is the dangerous direction of generator bugs — invalid
// generator output is already filtered against the Def during Build, but
// *missing* output silently truncates the state graph, making every check
// over it vacuously optimistic.
type ExecDivergence struct {
	System      string
	Component   string
	Action      string
	Fingerprint string // key of the offending state
	Missing     string // key of the successor the Def permits but Exec omits
}

// Error renders the divergence.
func (e *ExecDivergence) Error() string {
	return fmt.Sprintf("exec generator diverges from definition: system %s, component %s, action %s: in state %s the definition permits successor %s but the generator never produces it",
		e.System, e.Component, e.Action, e.Fingerprint, e.Missing)
}

// AuditExecs cross-checks every action's Exec generator against a
// brute-force enumeration of its Def over the declared domains, on every
// state of the graph, and returns the first *ExecDivergence found (nil if
// the generators are complete). The audit draws from the graph's resource
// meter; exhaustion aborts with an *engine.BudgetError.
func (g *Graph) AuditExecs() (err error) {
	m := g.Meter()
	sys := g.Sys
	var cur *state.State
	var curAction string
	defer engine.Capture(&err, "ts.AuditExecs("+sys.Name+")", func() (string, string) {
		if cur != nil {
			return cur.Key(), curAction
		}
		return "", curAction
	})
	for _, c := range sys.Components {
		owned := c.Owned()
		n, err := updateSpaceSize(owned, sys.Domains)
		if err != nil {
			return fmt.Errorf("audit component %s: %w", c.Name, err)
		}
		if n > 1_000_000 {
			return &engine.BudgetError{
				Reason: fmt.Sprintf("audit component %s: %d brute-force updates per state is out of reach", c.Name, n),
				Stats:  m.Stats(),
			}
		}
		for _, a := range c.Actions {
			if a.Exec == nil {
				continue // Build already uses the brute-force generator
			}
			curAction = c.Name + "." + a.Name
			brute := spec.BruteExec(owned, sys.Domains, a.Def)
			for _, s := range g.States {
				if err := m.Tick(); err != nil {
					return err
				}
				cur = s
				// Successors the generator produces (Def-filtered, as during
				// Build), deduplicated by fingerprint with structural
				// verification; Key() survives only in the divergence report.
				got := store.NewSet()
				for _, up := range a.Exec(s) {
					t := s.WithAll(up)
					ok, err := form.EvalBool(a.Def, state.Step{From: s, To: t}, nil)
					if err == nil && ok {
						got.Add(t)
					}
				}
				// Successors the definition permits.
				for _, up := range brute(s) {
					t := s.WithAll(up)
					if !got.Has(t) {
						return &ExecDivergence{
							System:      sys.Name,
							Component:   c.Name,
							Action:      a.Name,
							Fingerprint: s.Key(),
							Missing:     t.Key(),
						}
					}
				}
			}
		}
	}
	return nil
}
