package ts

import (
	"errors"
	"strings"
	"testing"

	"opentla/internal/engine"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

func TestBuildWithStateBudget(t *testing.T) {
	m := engine.Budget{MaxStates: 5}.Meter()
	_, err := counterSystem(50).BuildWith(m)
	if err == nil {
		t.Fatal("expected budget exhaustion")
	}
	var be *engine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *engine.BudgetError, got %T: %v", err, err)
	}
	if !strings.Contains(be.Reason, "state budget 5") {
		t.Errorf("reason = %q", be.Reason)
	}
	if be.Stats.States == 0 {
		t.Error("partial stats should record explored states")
	}
}

func TestBuildWithTransitionBudget(t *testing.T) {
	m := engine.Budget{MaxTransitions: 3}.Meter()
	_, err := counterSystem(50).BuildWith(m)
	var be *engine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *engine.BudgetError, got %T: %v", err, err)
	}
	if !strings.Contains(be.Reason, "transition budget") {
		t.Errorf("reason = %q", be.Reason)
	}
}

func TestBuildWithRecordsStats(t *testing.T) {
	m := engine.NoLimit()
	g, err := counterSystem(3).BuildWith(m)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.States != g.NumStates() {
		t.Errorf("meter states = %d, graph states = %d", s.States, g.NumStates())
	}
	if s.Transitions != g.NumEdges() {
		t.Errorf("meter transitions = %d, graph edges = %d", s.Transitions, g.NumEdges())
	}
	if g.Meter() != m {
		t.Error("graph should carry the build meter")
	}
}

func TestLegacyMaxStatesBecomesBudgetError(t *testing.T) {
	sys := counterSystem(50)
	sys.MaxStates = 4
	_, err := sys.Build()
	var be *engine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *engine.BudgetError, got %T: %v", err, err)
	}
	if !strings.Contains(be.Reason, "MaxStates limit 4") {
		t.Errorf("reason = %q", be.Reason)
	}
}

func TestOversizedInitialSpaceIsBudgetError(t *testing.T) {
	// 12 variables with 5-value domains: 5^12 ≈ 244M assignments.
	comp := &spec.Component{Name: "wide", Outputs: []string{"a"}}
	sys := &System{Name: "wide", Components: []*spec.Component{comp}, Domains: map[string][]value.Value{}}
	vars := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	comp.Outputs = vars
	for _, v := range vars {
		sys.Domains[v] = value.Ints(0, 4)
	}
	_, err := sys.Build()
	var be *engine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *engine.BudgetError, got %T: %v", err, err)
	}
	if !strings.Contains(be.Reason, "initial-state space") {
		t.Errorf("reason = %q", be.Reason)
	}
}

func TestBuildContainsPanicsWithFingerprint(t *testing.T) {
	c := counterComponent(3)
	c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
		x, _ := s.MustGet("x").AsInt()
		if x == 2 {
			panic("generator invariant broken")
		}
		if x >= 3 {
			return nil
		}
		return []map[string]value.Value{{"x": value.Int(x + 1)}}
	}
	sys := &System{
		Name:       "panicky",
		Components: []*spec.Component{c},
		Domains:    map[string][]value.Value{"x": value.Ints(0, 3)},
	}
	_, err := sys.Build()
	if err == nil {
		t.Fatal("expected contained panic")
	}
	var ee *engine.EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("expected *engine.EngineError, got %T: %v", err, err)
	}
	if !strings.Contains(ee.PanicVal, "generator invariant broken") {
		t.Errorf("panic val = %q", ee.PanicVal)
	}
	if !strings.Contains(ee.Fingerprint, "x=2") {
		t.Errorf("fingerprint = %q, want the offending state x=2", ee.Fingerprint)
	}
}

func TestProductInheritsMeterAndBudget(t *testing.T) {
	m := engine.Budget{MaxStates: 6}.Meter()
	g, err := counterSystem(2).BuildWith(m) // 3 states
	if err != nil {
		t.Fatal(err)
	}
	// A monitor that doubles the state count exceeds the shared budget.
	mon := &Monitor{
		Var:    "$m",
		Domain: value.Bools(),
		Init: func(s *state.State) ([]value.Value, error) {
			return []value.Value{value.True, value.False}, nil
		},
		Step: func(st state.Step, cur value.Value) ([]value.Value, error) {
			return []value.Value{value.True, value.False}, nil
		},
	}
	_, err = Product(g, []*Monitor{mon})
	var be *engine.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("expected *engine.BudgetError from product, got %T: %v", err, err)
	}
}

func TestAuditExecsCatchesIncompleteGenerator(t *testing.T) {
	c := counterComponent(3)
	// Generator drops the successor from x=1: states x>=2 vanish silently.
	c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
		x, _ := s.MustGet("x").AsInt()
		if x != 0 {
			return nil
		}
		return []map[string]value.Value{{"x": value.Int(1)}}
	}
	sys := &System{
		Name:       "truncated",
		Components: []*spec.Component{c},
		Domains:    map[string][]value.Value{"x": value.Ints(0, 3)},
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 2 {
		t.Fatalf("truncated graph should have 2 states, got %d", g.NumStates())
	}
	err = g.AuditExecs()
	if err == nil {
		t.Fatal("audit should detect the missing successor")
	}
	var div *ExecDivergence
	if !errors.As(err, &div) {
		t.Fatalf("expected *ExecDivergence, got %T: %v", err, err)
	}
	if div.Action != "Inc" || !strings.Contains(div.Fingerprint, "x=1") {
		t.Errorf("divergence = %+v", div)
	}
}

func TestAuditExecsPassesCompleteGenerator(t *testing.T) {
	c := counterComponent(3)
	c.Actions[0].Exec = func(s *state.State) []map[string]value.Value {
		x, _ := s.MustGet("x").AsInt()
		if x >= 3 {
			return nil
		}
		return []map[string]value.Value{{"x": value.Int(x + 1)}}
	}
	sys := &System{
		Name:       "complete",
		Components: []*spec.Component{c},
		Domains:    map[string][]value.Value{"x": value.Ints(0, 3)},
	}
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AuditExecs(); err != nil {
		t.Fatalf("complete generator should pass the audit: %v", err)
	}
}
