package ts

import (
	"errors"
	"fmt"
	"testing"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/value"
)

// memCache is an in-memory GraphCache for exercising the ts-side cache seam
// without importing internal/cache (which imports ts).
type memCache struct {
	snaps, ckpts       map[string]*Snapshot
	loadErr, ckLoadErr error
	hits, misses       int
	ckStores           int
}

func newMemCache() *memCache {
	return &memCache{snaps: map[string]*Snapshot{}, ckpts: map[string]*Snapshot{}}
}

func (c *memCache) Load(desc string) (*Snapshot, error) {
	if c.loadErr != nil {
		return nil, c.loadErr
	}
	if s, ok := c.snaps[desc]; ok {
		c.hits++
		return s, nil
	}
	c.misses++
	return nil, nil
}

func (c *memCache) Store(desc string, snap *Snapshot) error {
	c.snaps[desc] = snap
	delete(c.ckpts, desc)
	return nil
}

func (c *memCache) LoadCheckpoint(desc string) (*Snapshot, error) {
	if c.ckLoadErr != nil {
		return nil, c.ckLoadErr
	}
	return c.ckpts[desc], nil
}

func (c *memCache) StoreCheckpoint(desc string, snap *Snapshot) error {
	c.ckpts[desc] = snap
	c.ckStores++
	return nil
}

func TestCanonicalDescStable(t *testing.T) {
	d1, ok := counterSystem(3).CanonicalDesc()
	if !ok {
		t.Fatal("counter system should be describable")
	}
	d2, _ := counterSystem(3).CanonicalDesc()
	if d1 != d2 {
		t.Error("identical systems should have identical descriptions")
	}

	// Name, Workers, and MaxStates are not part of graph identity.
	renamed := counterSystem(3)
	renamed.Name = "other"
	renamed.Workers = 7
	renamed.MaxStates = 99
	if d3, _ := renamed.CanonicalDesc(); d3 != d1 {
		t.Error("Name/Workers/MaxStates should not affect the description")
	}

	// A different domain is a different system.
	if d4, _ := counterSystem(4).CanonicalDesc(); d4 == d1 {
		t.Error("different domains should yield different descriptions")
	}
}

func TestCanonicalDescRejectsExecOnlyActions(t *testing.T) {
	c := counterComponent(3)
	c.Actions[0].Def = nil
	c.Actions[0].Exec = func(s *state.State) []map[string]value.Value { return nil }
	sys := &System{
		Name:       "opaque",
		Components: []*spec.Component{c},
		Domains:    map[string][]value.Value{"x": value.Ints(0, 3)},
	}
	if _, ok := sys.CanonicalDesc(); ok {
		t.Error("an action with no Def cannot be content-addressed")
	}
}

func TestBuildWarmHitSkipsExploration(t *testing.T) {
	c := newMemCache()
	cold := counterSystem(3)
	cold.Cache = c
	gCold, err := cold.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.misses != 1 || len(c.snaps) != 1 {
		t.Fatalf("cold build: misses=%d snaps=%d, want 1/1", c.misses, len(c.snaps))
	}

	// The warm build hits the cache (despite the different Name and worker
	// count) and must not consume any state budget: the graph comes from the
	// snapshot, not from exploration.
	warm := counterSystem(3)
	warm.Name = "renamed"
	warm.Workers = 4
	warm.Cache = c
	m := engine.NoLimit()
	gWarm, err := warm.BuildWith(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.hits != 1 {
		t.Fatalf("warm build: hits=%d, want 1", c.hits)
	}
	if st := m.Stats(); st.States != 0 {
		t.Errorf("warm build consumed %d states of budget, want 0", st.States)
	}
	if signature(gWarm) != signature(gCold) {
		t.Error("warm graph differs from cold graph")
	}
}

func TestCorruptCacheFallsBackToColdBuild(t *testing.T) {
	// A cache that errors on every load behaves as a miss.
	c := newMemCache()
	c.loadErr = errors.New("bit rot")
	sys := counterSystem(3)
	sys.Cache = c
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", g.NumStates())
	}

	// A decodable but structurally invalid snapshot is also a miss.
	c2 := newMemCache()
	bad := counterSystem(3)
	bad.Cache = c2
	desc, _ := bad.CanonicalDesc()
	c2.snaps[desc] = &Snapshot{Complete: true, States: g.States, Inits: []int{99}, Offsets: []int{0}, Targets: nil}
	g2, err := bad.Build()
	if err != nil {
		t.Fatal(err)
	}
	if signature(g2) != signature(g) {
		t.Error("fallback build differs from clean build")
	}
	// The cold build replaces the invalid entry with a valid one.
	if !validSnapshot(c2.snaps[desc], true) {
		t.Error("cold build did not overwrite the invalid cache entry")
	}
}

func TestValidSnapshotBounds(t *testing.T) {
	s0 := state.FromPairs("x", value.Int(0))
	s1 := state.FromPairs("x", value.Int(1))
	good := &Snapshot{
		Complete: true,
		States:   []*state.State{s0, s1},
		Inits:    []int{0},
		Offsets:  []int{0, 2, 3},
		Targets:  []int32{0, 1, 1},
	}
	if !validSnapshot(good, true) {
		t.Fatal("well-formed snapshot rejected")
	}
	for name, snap := range map[string]*Snapshot{
		"nil":               nil,
		"wrong kind":        {Complete: false, States: good.States, Offsets: good.Offsets, Targets: good.Targets},
		"short offsets":     {Complete: true, States: good.States, Offsets: []int{0, 2}, Targets: []int32{0, 1}},
		"nonzero base":      {Complete: true, States: good.States, Offsets: []int{1, 2, 3}, Targets: []int32{0, 1, 1}},
		"decreasing":        {Complete: true, States: good.States, Offsets: []int{0, 2, 1}, Targets: []int32{0}},
		"target range":      {Complete: true, States: good.States, Offsets: []int{0, 1, 2}, Targets: []int32{0, 9}},
		"negative target":   {Complete: true, States: good.States, Offsets: []int{0, 1, 2}, Targets: []int32{0, -1}},
		"init range":        {Complete: true, States: good.States, Inits: []int{5}, Offsets: []int{0, 1, 2}, Targets: []int32{0, 1}},
		"off/target length": {Complete: true, States: good.States, Offsets: []int{0, 1, 2}, Targets: []int32{0, 1, 1}},
	} {
		if validSnapshot(snap, true) {
			t.Errorf("%s: invalid snapshot accepted", name)
		}
	}
	ck := &Snapshot{Level: 1, States: good.States, Inits: []int{0}, Offsets: []int{0, 2}, Targets: []int32{0, 1}}
	if !validSnapshot(ck, false) {
		t.Error("well-formed checkpoint rejected")
	}
	ck.Level = -1
	if validSnapshot(ck, false) {
		t.Error("negative-level checkpoint accepted")
	}
}

// TestCheckpointResumeDeterministic is the resume soundness test: a build
// interrupted by budget exhaustion, checkpointed, and resumed must produce a
// graph identical to an uninterrupted build — including its snapshot, so the
// resumed run's cache entry is byte-identical too.
func TestCheckpointResumeDeterministic(t *testing.T) {
	for _, workers := range []int{1, 4, 8} {
		mk := func() *System {
			sys := pairSystem(4)
			sys.Workers = workers
			return sys
		}
		oneShot := mk()
		gFull, err := oneShot.Build()
		if err != nil {
			t.Fatal(err)
		}
		want := signature(gFull)

		c := newMemCache()
		interrupted := mk()
		interrupted.Cache = c
		_, err = interrupted.BuildWith(engine.Budget{MaxStates: 8}.Meter())
		var be *engine.BudgetError
		if !errors.As(err, &be) {
			t.Fatalf("workers=%d: want budget exhaustion, got %v", workers, err)
		}
		if c.ckStores == 0 {
			t.Fatalf("workers=%d: exhaustion saved no checkpoint", workers)
		}

		resumed := mk()
		resumed.Cache = c
		resumed.Resume = true
		m := engine.NoLimit()
		gRes, err := resumed.BuildWith(m)
		if err != nil {
			t.Fatalf("workers=%d: resume failed: %v", workers, err)
		}
		if got := signature(gRes); got != want {
			t.Errorf("workers=%d: resumed graph differs from one-shot:\n--- one-shot ---\n%s--- resumed ---\n%s",
				workers, want, got)
		}
		// Restored states bypass the meter: the resumed run pays only for the
		// states it discovered itself.
		if st := m.Stats(); st.States >= gRes.NumStates() {
			t.Errorf("workers=%d: resumed run metered %d states, graph has %d — restored work was double-billed",
				workers, st.States, gRes.NumStates())
		}
		// The completed resume stores the full graph and clears the checkpoint.
		desc, _ := resumed.CanonicalDesc()
		if _, ok := c.ckpts[desc]; ok {
			t.Errorf("workers=%d: checkpoint not cleared after completion", workers)
		}
		if _, ok := c.snaps[desc]; !ok {
			t.Errorf("workers=%d: completed resume did not store the graph", workers)
		}
	}
}

func TestResumeWithCorruptCheckpointColdBuilds(t *testing.T) {
	c := newMemCache()
	c.ckLoadErr = errors.New("torn file")
	sys := counterSystem(3)
	sys.Cache = c
	sys.Resume = true
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 4 {
		t.Fatalf("states = %d, want 4", g.NumStates())
	}
}

func TestProductWarmHit(t *testing.T) {
	mon := func() *Monitor {
		below := form.Lt(form.PrimedVar("x"), form.IntC(3))
		return SafetyMonitor("ok", form.Lt(form.Var("x"), form.IntC(3)),
			[]form.Expr{form.Square(below, form.Var("x"))}, true)
	}
	c := newMemCache()
	build := func() *Graph {
		sys := pairSystem(3)
		sys.Cache = c
		g, err := sys.Build()
		if err != nil {
			t.Fatal(err)
		}
		p, err := Product(g, []*Monitor{mon()})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := build()
	if len(c.snaps) != 2 {
		t.Fatalf("stored %d snapshots, want 2 (base + product)", len(c.snaps))
	}
	hits := c.hits
	p2 := build()
	if c.hits != hits+2 {
		t.Fatalf("warm run hit %d times, want 2 (base + product)", c.hits-hits)
	}
	if signature(p2) != signature(p1) {
		t.Error("warm product differs from cold product")
	}
}

func TestProductWithoutDescIsNotCached(t *testing.T) {
	c := newMemCache()
	sys := counterSystem(2)
	sys.Cache = c
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	// A hand-rolled monitor without Desc cannot be content-addressed.
	opaque := &Monitor{
		Var:    "$m",
		Domain: value.Bools(),
		Init: func(s *state.State) ([]value.Value, error) {
			return []value.Value{value.True}, nil
		},
		Step: func(st state.Step, cur value.Value) ([]value.Value, error) {
			return []value.Value{value.True}, nil
		},
	}
	if _, err := Product(g, []*Monitor{opaque}); err != nil {
		t.Fatal(err)
	}
	if len(c.snaps) != 1 {
		t.Errorf("stored %d snapshots, want 1 (base only; opaque product must not be cached)", len(c.snaps))
	}
}

// TestSnapshotRoundTripThroughGraph rebuilds a graph from its own snapshot
// and checks the reconstruction is observably identical, including the index
// (ID lookups).
func TestSnapshotRoundTripThroughGraph(t *testing.T) {
	sys := pairSystem(3)
	g, err := sys.Build()
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()
	if !validSnapshot(snap, true) {
		t.Fatal("graph snapshot fails validation")
	}
	g2 := graphFromSnapshot(sys, sys.Ctx(), engine.NoLimit(), snap, nil)
	if signature(g2) != signature(g) {
		t.Error("reconstructed graph differs")
	}
	for id, s := range g.States {
		if got := g2.ID(s); got != id {
			t.Fatalf("reconstructed index: ID(%s) = %d, want %d", s, got, id)
		}
	}
}

func TestCheckpointSnapshotCopiesCommittedPrefix(t *testing.T) {
	res := &exploreResult{
		states: []*state.State{
			state.FromPairs("x", value.Int(0)),
			state.FromPairs("x", value.Int(1)),
			state.FromPairs("x", value.Int(2)),
		},
		inits: []int{0},
	}
	offsets := []int{0, 2, 4}
	targets := []int32{0, 1, 1, 2}
	snap := checkpointSnapshot(res, offsets, targets, nil, 2, 1, 1)
	if snap.Complete {
		t.Error("checkpoint marked complete")
	}
	if len(snap.States) != 2 || snap.Rows() != 1 || snap.Level != 1 {
		t.Errorf("snapshot = %d states, %d rows, level %d; want 2, 1, 1", len(snap.States), snap.Rows(), snap.Level)
	}
	if fmt.Sprint(snap.Targets) != "[0 1]" {
		t.Errorf("targets = %v, want [0 1]", snap.Targets)
	}
	if !validSnapshot(snap, false) {
		t.Error("checkpoint fails validation")
	}
}
