package ts

import (
	"fmt"
	"time"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/metrics"
	"opentla/internal/obs"
	"opentla/internal/reduce"
	"opentla/internal/state"
	"opentla/internal/store"
)

// Graph is the reachable state graph of a System. Every state has a
// stuttering self-loop (TLA behaviors always permit stuttering), so every
// finite path extends to an infinite behavior.
//
// Adjacency is stored in compressed-sparse-row form, finalized once
// exploration completes: offsets[i]:offsets[i+1] index the successor ids of
// state i in targets. Consumers iterate through ForEachSucc and Degree
// rather than touching the arrays. State numbering is deterministic
// regardless of how many workers built the graph (see explore).
type Graph struct {
	Sys    *System
	Ctx    *form.Ctx
	States []*state.State
	Inits  []int

	offsets []int
	targets []int32
	idx     *store.Index
	meter   *engine.Meter

	// Reduction bookkeeping. A reduced graph's States are canonical orbit
	// representatives and its adjacency may omit interleavings; edgeStates
	// (parallel to targets, symmetry builds only) preserves each edge's real
	// successor so checks can iterate genuine steps via ForEachSuccStep.
	// canon maps any state to its representative (nil when symmetry is off).
	edgeStates []*state.State
	reduced    bool
	canon      func(*state.State) *state.State
}

// Reduced reports whether the graph was built under state-space reduction
// (POR and/or symmetry). Reduced graphs preserve all safety verdicts over
// the visible variables but are unsuitable for fairness/liveness analysis.
func (g *Graph) Reduced() bool { return g.reduced }

// Meter returns the resource meter governing this graph and every check run
// over it. Graphs built without an explicit budget get an unlimited meter.
func (g *Graph) Meter() *engine.Meter {
	if g.meter == nil {
		g.meter = engine.NoLimit()
	}
	return g.meter
}

// Build explores the reachable states of the system breadth-first and
// returns the state graph, without a resource budget.
func (sys *System) Build() (*Graph, error) {
	return sys.BuildWith(engine.NoLimit())
}

// BuildWith explores the reachable states of the system under the given
// resource meter, using a level-synchronous parallel frontier BFS with
// sys.Workers goroutines (0 = GOMAXPROCS); the resulting graph — numbering,
// initial ids, adjacency — is identical at every worker count. Exploration
// aborts with an *engine.BudgetError (carrying partial statistics) when the
// budget is exhausted, and internal panics are contained as
// *engine.EngineError with the fingerprint of the state being expanded. The
// meter stays attached to the returned graph, so subsequent checks and
// monitor products draw from the same budget.
func (sys *System) BuildWith(m *engine.Meter) (*Graph, error) {
	if m == nil {
		m = engine.NoLimit()
	}
	defer obs.SpanFromMeter(m, "build:"+sys.Name)()
	if err := sys.Validate(); err != nil {
		return nil, err
	}

	// Reduction setup precedes the cache probe: an invalid symmetry
	// declaration is a configuration error regardless of cache state, and
	// the canonicalizer is needed to reconstruct a cached reduced graph.
	rd := sys.Reduce
	var canon func(*state.State) *state.State
	if rd.SymActive() {
		if err := rd.Symmetry.Validate(sys.Components, sys.reduceSteps(), sys.reduceInits(), sys.Domains); err != nil {
			return nil, fmt.Errorf("system %s: symmetry declaration rejected: %w", sys.Name, err)
		}
		canon = rd.Canonicalizer().Canon
	}

	// Cache consultation happens before compiling or enumerating anything: a
	// warm hit skips graph construction entirely. A corrupt entry degrades
	// to a cold build, never to a wrong graph. (CanonicalDesc embeds the
	// reduction configuration, so reduced and full graphs never collide.)
	desc, resume := sys.cacheSetup(m)
	if desc != "" {
		if snap := cacheLoad(sys.Cache, m, desc); snap != nil {
			return graphFromSnapshot(sys, sys.Ctx(), m, snap, canon), nil
		}
	}

	compiled, err := sys.compile()
	if err != nil {
		return nil, err
	}
	free := sys.FreeVars()

	var plan *reduce.PORPlan
	var rc *reductionCounters
	if rd.Active() {
		rc = &reductionCounters{}
		if rd.POR {
			var reason string
			plan, reason = reduce.NewPORPlan(sys.Components, sys.reduceSteps(), free, rd.Visible, rd.Sabotage)
			if plan == nil {
				m.Note("reduce", fmt.Sprintf("%s: POR disabled: %s", sys.Name, reason))
			} else {
				m.Note("reduce", fmt.Sprintf("%s: %s", sys.Name, reduce.DescribePlan(plan)))
			}
		}
	}
	skipC3 := rd != nil && rd.Sabotage != nil && rd.Sabotage.SkipC3

	var inits []*state.State
	if resume == nil {
		inits, err = sys.initialStates(m)
		if err != nil {
			return nil, err
		}
		if len(inits) == 0 {
			return nil, fmt.Errorf("system %s: no initial states", sys.Name)
		}
	}
	op := "ts.Build(" + sys.Name + ")"
	res, err := explore(exploreParams{
		op:        op,
		workers:   sys.Workers,
		limit:     sys.maxStates(),
		limitName: "system " + sys.Name,
		meter:     m,
		inits:     inits,
		expand: func(s *state.State, committed func(*state.State) bool) ([]*state.State, error) {
			if plan != nil {
				return sys.ampleSuccessors(compiled, free, plan, skipC3, s, committed, rc)
			}
			succs, serr := sys.successors(compiled, free, s)
			if serr == nil && rc != nil {
				rc.fullStates.Add(1)
				rc.fullSuccs.Add(int64(len(succs)))
			}
			return succs, serr
		},
		canon:        canon,
		resume:       resume,
		onCheckpoint: checkpointSaver(sys.Cache, m, desc),
	})
	if err != nil {
		return nil, err
	}
	if rc != nil {
		rc.symCollapsed.Add(res.symCollapsed)
		stats := rc.stats()
		m.NoteReduction(op, stats)
		noteReductionMetrics(m, stats)
	}
	g := &Graph{
		Sys:        sys,
		Ctx:        sys.Ctx(),
		States:     res.states,
		Inits:      res.inits,
		offsets:    res.offsets,
		targets:    res.targets,
		edgeStates: res.edgeStates,
		idx:        res.idx,
		meter:      m,
		reduced:    rd.Active(),
		canon:      canon,
	}
	cacheStore(sys.Cache, m, desc, g)
	return g, nil
}

// cacheSetup resolves the system's cache key and, when resuming, loads the
// saved checkpoint. It returns ("", nil) when caching is disabled or the
// system is not content-addressable.
func (sys *System) cacheSetup(m *engine.Meter) (string, *Snapshot) {
	if sys.Cache == nil {
		return "", nil
	}
	desc, ok := sys.CanonicalDesc()
	if !ok {
		return "", nil
	}
	var resume *Snapshot
	if sys.Resume {
		snap, err := sys.Cache.LoadCheckpoint(desc)
		switch {
		case err != nil:
			m.Note("cache-corrupt", fmt.Sprintf("checkpoint for %s unusable, cold build: %v", sys.Name, err))
		case snap != nil && !validSnapshot(snap, false):
			m.Note("cache-corrupt", fmt.Sprintf("checkpoint for %s fails validation, cold build", sys.Name))
		case snap != nil:
			resume = snap
			m.Note("resume", fmt.Sprintf("%s: resuming from level %d (%d states, %d committed rows)",
				sys.Name, snap.Level, len(snap.States), snap.Rows()))
		}
	}
	return desc, resume
}

// cacheLoad consults the cache for a complete graph, noting the outcome in
// the flight recorder and the hit/miss counters (corruption counts as a
// miss: the build goes cold either way). Corruption and validation failures
// degrade to a miss, never to a wrong graph.
func cacheLoad(c GraphCache, m *engine.Meter, desc string) *Snapshot {
	defer observeCacheOp(m, "load", time.Now())
	reg := metrics.FromMeter(m)
	miss := func() {
		reg.Counter("opentla_cache_misses_total", "graph cache lookups that went to a cold build").Inc()
	}
	snap, err := c.Load(desc)
	switch {
	case err != nil:
		m.Note("cache-corrupt", fmt.Sprintf("cache entry unusable, cold build: %v", err))
		miss()
		return nil
	case snap == nil:
		m.Note("cache-miss", "no cached graph")
		miss()
		return nil
	case !validSnapshot(snap, true):
		m.Note("cache-corrupt", "cache entry fails validation, cold build")
		miss()
		return nil
	}
	m.Note("cache-hit", fmt.Sprintf("reusing cached graph: %d states, %d edges", len(snap.States), len(snap.Targets)))
	reg.Counter("opentla_cache_hits_total", "graph cache lookups satisfied by a cached graph").Inc()
	return snap
}

// cacheStore persists a complete graph, noting write failures (which are
// nonfatal: the build already succeeded).
func cacheStore(c GraphCache, m *engine.Meter, desc string, g *Graph) {
	if c == nil || desc == "" {
		return
	}
	defer observeCacheOp(m, "store", time.Now())
	if err := c.Store(desc, g.Snapshot()); err != nil {
		m.Note("cache-corrupt", fmt.Sprintf("storing cache entry: %v", err))
	}
}

// checkpointSaver returns the explore onCheckpoint callback persisting
// budget-exhaustion checkpoints, or nil when caching is disabled.
func checkpointSaver(c GraphCache, m *engine.Meter, desc string) func(*Snapshot) {
	if c == nil || desc == "" {
		return nil
	}
	return func(snap *Snapshot) {
		defer observeCacheOp(m, "checkpoint", time.Now())
		if err := c.StoreCheckpoint(desc, snap); err != nil {
			m.Note("cache-corrupt", fmt.Sprintf("storing checkpoint: %v", err))
			return
		}
		m.Note("checkpoint-saved", fmt.Sprintf("checkpoint at level %d: %d states, %d committed rows; rerun with -resume to continue",
			snap.Level, len(snap.States), snap.Rows()))
	}
}

// NumStates returns the number of reachable states.
func (g *Graph) NumStates() int { return len(g.States) }

// NumEdges returns the number of edges (including self-loops).
func (g *Graph) NumEdges() int { return len(g.targets) }

// Degree returns the number of successors of state id.
func (g *Graph) Degree(id int) int { return g.offsets[id+1] - g.offsets[id] }

// ForEachSucc calls f for every successor of from, in adjacency order,
// stopping early if f returns false. It reports whether the iteration ran to
// completion (false = stopped early).
func (g *Graph) ForEachSucc(from int, f func(to int) bool) bool {
	for _, to := range g.targets[g.offsets[from]:g.offsets[from+1]] {
		if !f(int(to)) {
			return false
		}
	}
	return true
}

// ForEachSuccStep calls f for every successor edge of from with the
// canonical target id and the edge's REAL successor state, in adjacency
// order, stopping early if f returns false; it reports whether the iteration
// ran to completion. On an unreduced graph the real successor is simply
// States[to]; on a symmetry-reduced graph it is the genuine post-state of
// the step from States[from] (whose canonical representative is States[to]),
// so ⟨States[from], real⟩ is always a step the system can actually take —
// the iteration surface safety checks must use to stay false-alarm-free.
func (g *Graph) ForEachSuccStep(from int, f func(to int, real *state.State) bool) bool {
	lo, hi := g.offsets[from], g.offsets[from+1]
	for k := lo; k < hi; k++ {
		to := int(g.targets[k])
		real := g.States[to]
		if len(g.edgeStates) > 0 && g.edgeStates[k] != nil {
			real = g.edgeStates[k]
		}
		if !f(to, real) {
			return false
		}
	}
	return true
}

// ForEachEdgeStep calls f for every edge with its real successor state (see
// ForEachSuccStep), stopping early if f returns false.
func (g *Graph) ForEachEdgeStep(f func(from, to int, real *state.State) bool) {
	for from := 0; from < len(g.States); from++ {
		if !g.ForEachSuccStep(from, func(to int, real *state.State) bool { return f(from, to, real) }) {
			return
		}
	}
}

// ID returns the identifier of a state, or -1 if unreachable.
func (g *Graph) ID(s *state.State) int {
	if id, ok := g.idx.Get(s); ok {
		return id
	}
	return -1
}

// ForEachEdge calls f for every edge, stopping early if f returns false.
func (g *Graph) ForEachEdge(f func(from, to int) bool) {
	for from := 0; from < len(g.States); from++ {
		if !g.ForEachSucc(from, func(to int) bool { return f(from, to) }) {
			return
		}
	}
}

// PathTo returns state IDs of a shortest path from an initial state to
// target (inclusive), or nil if unreachable.
func (g *Graph) PathTo(target int) []int {
	return g.PathBetween(g.Inits, target, nil)
}

// PathBetween returns a shortest path from any state in from to target,
// restricted to states allowed by the filter (nil allows all). The path
// includes both endpoints; it is nil if no path exists.
func (g *Graph) PathBetween(from []int, target int, allowed func(int) bool) []int {
	prev := make([]int, len(g.States))
	for i := range prev {
		prev[i] = -2 // unvisited
	}
	var queue []int
	for _, s := range from {
		if allowed != nil && !allowed(s) {
			continue
		}
		if prev[s] == -2 {
			prev[s] = -1 // source
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == target {
			var path []int
			for v := u; v != -1; v = prev[v] {
				path = append(path, v)
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		g.ForEachSucc(u, func(v int) bool {
			if prev[v] != -2 {
				return true
			}
			if allowed != nil && !allowed(v) {
				return true
			}
			prev[v] = u
			queue = append(queue, v)
			return true
		})
	}
	return nil
}

// Behavior converts a path of state IDs to a finite behavior.
func (g *Graph) Behavior(path []int) state.Behavior {
	out := make(state.Behavior, len(path))
	for i, id := range path {
		out[i] = g.States[id]
	}
	return out
}

// SCCs returns the strongly connected components of the subgraph induced by
// the allowed states and edges (nil filters allow everything), in reverse
// topological order, using Tarjan's algorithm (iterative).
func (g *Graph) SCCs(allowedState func(int) bool, allowedEdge func(from, to int) bool) [][]int {
	n := len(g.States)
	const unvisited = -1
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = unvisited
	}
	var stack []int
	var sccs [][]int
	counter := 0

	m := g.Meter()
	type frame struct {
		v    int
		succ int
	}
	for root := 0; root < n; root++ {
		// Cooperative cancellation: budget exhaustion latches in the meter,
		// so callers observe it via Meter().Err() after the (partial) result.
		if m.Tick() != nil {
			break
		}
		if indexOf[root] != unvisited || (allowedState != nil && !allowedState(root)) {
			continue
		}
		var call []frame
		indexOf[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		call = append(call, frame{v: root})
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			advanced := false
			row := g.targets[g.offsets[v]:g.offsets[v+1]]
			for f.succ < len(row) {
				w := int(row[f.succ])
				f.succ++
				if allowedState != nil && !allowedState(w) {
					continue
				}
				if allowedEdge != nil && !allowedEdge(v, w) {
					continue
				}
				if indexOf[w] == unvisited {
					indexOf[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && indexOf[w] < low[v] {
					low[v] = indexOf[w]
				}
			}
			if advanced {
				continue
			}
			// v finished.
			if low[v] == indexOf[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
				m.NoteSCC()
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return sccs
}

// HasEdge reports whether the graph has an edge from → to.
func (g *Graph) HasEdge(from, to int) bool {
	return !g.ForEachSucc(from, func(v int) bool { return v != to })
}
