package ts

import (
	"fmt"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/state"
)

// Graph is the reachable state graph of a System. Every state has a
// stuttering self-loop (TLA behaviors always permit stuttering), so every
// finite path extends to an infinite behavior.
type Graph struct {
	Sys    *System
	Ctx    *form.Ctx
	States []*state.State
	Inits  []int
	Succ   [][]int

	index map[string]int
	meter *engine.Meter
}

// Meter returns the resource meter governing this graph and every check run
// over it. Graphs built without an explicit budget get an unlimited meter.
func (g *Graph) Meter() *engine.Meter {
	if g.meter == nil {
		g.meter = engine.NoLimit()
	}
	return g.meter
}

// Build explores the reachable states of the system breadth-first and
// returns the state graph, without a resource budget.
func (sys *System) Build() (*Graph, error) {
	return sys.BuildWith(engine.NoLimit())
}

// BuildWith explores the reachable states of the system breadth-first under
// the given resource meter. Exploration aborts with an *engine.BudgetError
// (carrying partial statistics) when the budget is exhausted, and internal
// panics are contained as *engine.EngineError with the fingerprint of the
// state being expanded. The meter stays attached to the returned graph, so
// subsequent checks and monitor products draw from the same budget.
func (sys *System) BuildWith(m *engine.Meter) (g *Graph, err error) {
	if m == nil {
		m = engine.NoLimit()
	}
	var cur *state.State
	defer engine.Capture(&err, "ts.Build("+sys.Name+")", func() (string, string) {
		if cur != nil {
			return cur.Key(), ""
		}
		return "", ""
	})
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	compiled, err := sys.compile()
	if err != nil {
		return nil, err
	}
	free := sys.FreeVars()
	g = &Graph{Sys: sys, Ctx: sys.Ctx(), index: make(map[string]int), meter: m}

	inits, err := sys.initialStates(m)
	if err != nil {
		return nil, err
	}
	if len(inits) == 0 {
		return nil, fmt.Errorf("system %s: no initial states", sys.Name)
	}
	var queue []int
	add := func(s *state.State) int {
		k := s.Key()
		if id, ok := g.index[k]; ok {
			return id
		}
		id := len(g.States)
		g.States = append(g.States, s)
		g.Succ = append(g.Succ, nil)
		g.index[k] = id
		queue = append(queue, id)
		m.AddState() // exhaustion is latched; the BFS loop aborts below
		return id
	}
	for _, s := range inits {
		g.Inits = append(g.Inits, add(s))
	}
	limit := sys.maxStates()
	for len(queue) > 0 {
		if err := m.Tick(); err != nil {
			return nil, err
		}
		id := queue[0]
		queue = queue[1:]
		cur = g.States[id]
		succs, err := sys.successors(compiled, free, cur)
		if err != nil {
			return nil, err
		}
		for _, t := range succs {
			tid := add(t)
			g.Succ[id] = append(g.Succ[id], tid)
		}
		if err := m.AddTransitions(len(succs)); err != nil {
			return nil, err
		}
		m.NoteFrontier(len(queue))
		if err := m.Err(); err != nil {
			return nil, err
		}
		if len(g.States) > limit {
			return nil, &engine.BudgetError{
				Reason: fmt.Sprintf("system %s: state space exceeds MaxStates limit %d", sys.Name, limit),
				Stats:  m.Stats(),
			}
		}
	}
	return g, nil
}

// NumStates returns the number of reachable states.
func (g *Graph) NumStates() int { return len(g.States) }

// NumEdges returns the number of edges (including self-loops).
func (g *Graph) NumEdges() int {
	n := 0
	for _, s := range g.Succ {
		n += len(s)
	}
	return n
}

// ID returns the identifier of a state, or -1 if unreachable.
func (g *Graph) ID(s *state.State) int {
	if id, ok := g.index[s.Key()]; ok {
		return id
	}
	return -1
}

// ForEachEdge calls f for every edge, stopping early if f returns false.
func (g *Graph) ForEachEdge(f func(from, to int) bool) {
	for from, succs := range g.Succ {
		for _, to := range succs {
			if !f(from, to) {
				return
			}
		}
	}
}

// PathTo returns state IDs of a shortest path from an initial state to
// target (inclusive), or nil if unreachable.
func (g *Graph) PathTo(target int) []int {
	return g.PathBetween(g.Inits, target, nil)
}

// PathBetween returns a shortest path from any state in from to target,
// restricted to states allowed by the filter (nil allows all). The path
// includes both endpoints; it is nil if no path exists.
func (g *Graph) PathBetween(from []int, target int, allowed func(int) bool) []int {
	prev := make([]int, len(g.States))
	for i := range prev {
		prev[i] = -2 // unvisited
	}
	var queue []int
	for _, s := range from {
		if allowed != nil && !allowed(s) {
			continue
		}
		if prev[s] == -2 {
			prev[s] = -1 // source
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == target {
			var path []int
			for v := u; v != -1; v = prev[v] {
				path = append(path, v)
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		for _, v := range g.Succ[u] {
			if prev[v] != -2 {
				continue
			}
			if allowed != nil && !allowed(v) {
				continue
			}
			prev[v] = u
			queue = append(queue, v)
		}
	}
	return nil
}

// Behavior converts a path of state IDs to a finite behavior.
func (g *Graph) Behavior(path []int) state.Behavior {
	out := make(state.Behavior, len(path))
	for i, id := range path {
		out[i] = g.States[id]
	}
	return out
}

// SCCs returns the strongly connected components of the subgraph induced by
// the allowed states and edges (nil filters allow everything), in reverse
// topological order, using Tarjan's algorithm (iterative).
func (g *Graph) SCCs(allowedState func(int) bool, allowedEdge func(from, to int) bool) [][]int {
	n := len(g.States)
	const unvisited = -1
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = unvisited
	}
	var stack []int
	var sccs [][]int
	counter := 0

	m := g.Meter()
	type frame struct {
		v    int
		succ int
	}
	for root := 0; root < n; root++ {
		// Cooperative cancellation: budget exhaustion latches in the meter,
		// so callers observe it via Meter().Err() after the (partial) result.
		if m.Tick() != nil {
			break
		}
		if indexOf[root] != unvisited || (allowedState != nil && !allowedState(root)) {
			continue
		}
		var call []frame
		indexOf[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		call = append(call, frame{v: root})
		for len(call) > 0 {
			f := &call[len(call)-1]
			v := f.v
			advanced := false
			for f.succ < len(g.Succ[v]) {
				w := g.Succ[v][f.succ]
				f.succ++
				if allowedState != nil && !allowedState(w) {
					continue
				}
				if allowedEdge != nil && !allowedEdge(v, w) {
					continue
				}
				if indexOf[w] == unvisited {
					indexOf[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && indexOf[w] < low[v] {
					low[v] = indexOf[w]
				}
			}
			if advanced {
				continue
			}
			// v finished.
			if low[v] == indexOf[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
				m.NoteSCC()
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return sccs
}

// HasEdge reports whether the graph has an edge from → to.
func (g *Graph) HasEdge(from, to int) bool {
	for _, v := range g.Succ[from] {
		if v == to {
			return true
		}
	}
	return false
}
