package ts

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"opentla/internal/engine"
)

// levelRecord is one ObserveLevel callback.
type levelRecord struct {
	op          string
	level       int
	width       int
	workers     int
	totalStates int
}

// levelObserver collects ObserveLevel calls; concurrency-safe because
// exploration may invoke the observer from the coordinating goroutine while
// tests read afterwards.
type levelObserver struct {
	mu     sync.Mutex
	levels []levelRecord
	events []string
}

func (o *levelObserver) ObserveEvent(kind, msg string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, kind+": "+msg)
}

func (o *levelObserver) ObserveLevel(op string, level, width, workers, totalStates int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.levels = append(o.levels, levelRecord{op, level, width, workers, totalStates})
}

func (o *levelObserver) ObserveReduction(op string, s engine.ReductionStats) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, fmt.Sprintf("reduce: %s %+v", op, s))
}

// TestExploreReportsLevels verifies that graph exploration emits one
// ObserveLevel per BFS level barrier with consistent counters: levels
// strictly increasing from 0, widths summing to the number of states, and
// the final cumulative total matching the graph.
func TestExploreReportsLevels(t *testing.T) {
	for _, workers := range []int{1, 4} {
		obs := &levelObserver{}
		m := engine.NoLimit()
		m.SetObserver(obs)
		sys := pairSystem(4)
		sys.Workers = workers
		g, err := sys.BuildWith(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(obs.levels) == 0 {
			t.Fatalf("workers=%d: no ObserveLevel calls", workers)
		}
		widthSum, prevTotal := 0, 0
		for i, l := range obs.levels {
			if l.level != i {
				t.Errorf("workers=%d: level %d reported as %d", workers, i, l.level)
			}
			if !strings.Contains(l.op, "ts.Build") {
				t.Errorf("workers=%d: op = %q, want a ts.Build label", workers, l.op)
			}
			if l.workers < 1 {
				t.Errorf("workers=%d: reported worker count %d", workers, l.workers)
			}
			widthSum += l.width
			// totalStates counts everything discovered so far, including the
			// next level found while draining this one: at least the drained
			// states, never shrinking.
			if l.totalStates < widthSum || l.totalStates < prevTotal {
				t.Errorf("workers=%d: level %d total %d, want >= drained %d and >= previous %d",
					workers, i, l.totalStates, widthSum, prevTotal)
			}
			prevTotal = l.totalStates
		}
		if widthSum != g.NumStates() {
			t.Errorf("workers=%d: level widths sum to %d, graph has %d states",
				workers, widthSum, g.NumStates())
		}
		final := obs.levels[len(obs.levels)-1]
		if final.totalStates != g.NumStates() {
			t.Errorf("workers=%d: final total %d, want %d", workers, final.totalStates, g.NumStates())
		}
	}
}

// TestExploreNoObserverStillCounts pins the disabled path: no observer, same
// graph, frontier peak still recorded by the meter.
func TestExploreNoObserverStillCounts(t *testing.T) {
	m := engine.NoLimit()
	g, err := pairSystem(4).BuildWith(m)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.States != g.NumStates() {
		t.Errorf("meter states %d, graph %d", st.States, g.NumStates())
	}
	if st.PeakFrontier <= 0 {
		t.Errorf("peak frontier %d, want > 0", st.PeakFrontier)
	}
}
