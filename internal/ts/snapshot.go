package ts

import (
	"strconv"
	"strings"

	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/state"
	"opentla/internal/store"
)

// Snapshot is the serializable image of an exploration: either a complete
// graph (Complete == true, one CSR row per state) or a checkpoint taken at a
// level barrier of the level-synchronous BFS (rows only for the states whose
// successor lists were committed; the remaining states are the frontier of
// the next level to run).
//
// Because exploration numbering is deterministic at any worker count, a
// snapshot is a canonical encoding of the graph prefix it covers: two runs
// of the same system produce byte-identical snapshots, which is what makes
// content-addressed caching and checkpoint/resume sound.
type Snapshot struct {
	// Complete distinguishes a finished graph from a checkpoint.
	Complete bool
	// Level is the next BFS level to run when resuming (meaningless for a
	// complete snapshot).
	Level int
	// States holds every explored state in final-id order.
	States []*state.State
	// Inits are the final ids of the initial states.
	Inits []int
	// Offsets and Targets are the committed CSR rows: len(Offsets)-1 states
	// have their successor lists recorded. For a complete snapshot
	// len(Offsets) == len(States)+1; for a checkpoint the states at ids
	// >= len(Offsets)-1 are the pending frontier.
	Offsets []int
	Targets []int32
	// EdgeStates, when non-empty, is parallel to Targets and holds each
	// edge's real (pre-canonicalization) successor state; present only for
	// graphs built under symmetry reduction. Empty means every edge's real
	// successor IS the target state.
	EdgeStates []*state.State
}

// Rows returns the number of committed adjacency rows.
func (s *Snapshot) Rows() int {
	if len(s.Offsets) == 0 {
		return 0
	}
	return len(s.Offsets) - 1
}

// GraphCache is the persistence seam consulted by BuildWith and Product,
// keyed by the canonical description of the system (see CanonicalDesc). The
// standard implementation is internal/cache; ts depends only on this
// interface, mirroring the engine.Observer seam.
//
// Load and LoadCheckpoint return (nil, nil) on a miss; a non-nil error means
// the stored entry exists but could not be decoded (corruption, version
// mismatch), which callers treat as a miss after noting it.
type GraphCache interface {
	Load(desc string) (*Snapshot, error)
	Store(desc string, snap *Snapshot) error
	LoadCheckpoint(desc string) (*Snapshot, error)
	StoreCheckpoint(desc string, snap *Snapshot) error
}

// Snapshot returns the complete serializable image of the graph. The
// returned value aliases the graph's slices; treat it as read-only.
// Snapshot's output is hashed and cached; it must not depend on map
// iteration order.
//
// aglint:deterministic
func (g *Graph) Snapshot() *Snapshot {
	return &Snapshot{
		Complete:   true,
		States:     g.States,
		Inits:      g.Inits,
		Offsets:    g.offsets,
		Targets:    g.targets,
		EdgeStates: g.edgeStates,
	}
}

// graphFromSnapshot reconstructs a graph from a complete snapshot, rebuilding
// the fingerprint index from the state list. canon is the canonicalizer of
// the reconstructing configuration (nil when symmetry is off); the reduced
// flag follows the configuration, not the snapshot — the cache key embeds the
// reduction description, so a snapshot is only ever loaded by a matching
// configuration.
func graphFromSnapshot(sys *System, ctx *form.Ctx, m *engine.Meter, snap *Snapshot, canon func(*state.State) *state.State) *Graph {
	return &Graph{
		Sys:        sys,
		Ctx:        ctx,
		States:     snap.States,
		Inits:      snap.Inits,
		offsets:    snap.Offsets,
		targets:    snap.Targets,
		edgeStates: snap.EdgeStates,
		idx:        store.NewIndexFrom(snap.States),
		meter:      m,
		reduced:    sys.Reduce.Active(),
		canon:      canon,
	}
}

// Valid sanity-checks the snapshot against the structural invariants graph
// reconstruction relies on, for wantComplete matching Complete. Exposed for
// cache fsck, which must judge entries without rebuilding their systems.
func (s *Snapshot) Valid(wantComplete bool) bool {
	return validSnapshot(s, wantComplete)
}

// validSnapshot sanity-checks a decoded snapshot against the structural
// invariants graph reconstruction relies on. The cache layer verifies the
// byte-level checksum; this guards the semantic bounds so a decoded-but-wrong
// snapshot can never index out of range.
func validSnapshot(snap *Snapshot, wantComplete bool) bool {
	if snap == nil || snap.Complete != wantComplete {
		return false
	}
	n := len(snap.States)
	if wantComplete && len(snap.Offsets) != n+1 {
		return false
	}
	if len(snap.Offsets) == 0 || len(snap.Offsets)-1 > n || snap.Offsets[0] != 0 {
		return false
	}
	for i := 1; i < len(snap.Offsets); i++ {
		if snap.Offsets[i] < snap.Offsets[i-1] {
			return false
		}
	}
	if snap.Offsets[len(snap.Offsets)-1] != len(snap.Targets) {
		return false
	}
	if len(snap.EdgeStates) != 0 && len(snap.EdgeStates) != len(snap.Targets) {
		return false
	}
	for _, t := range snap.Targets {
		if t < 0 || int(t) >= n {
			return false
		}
	}
	for _, id := range snap.Inits {
		if id < 0 || id >= n {
			return false
		}
	}
	if !wantComplete && snap.Level < 0 {
		return false
	}
	return true
}

// CanonicalDesc renders the system as a canonical content-addressed
// description string: two systems with the same description build
// byte-identical graphs, so the description keys the graph cache.
//
// The description covers everything graph construction depends on — the
// variable domains, each component's interface, initial predicate, action
// definitions and fairness (in declaration order, which fixes successor
// enumeration order), the step constraints, and the initial constraints. It
// deliberately excludes Name (content addressing lets differently-named
// instances of the same system share entries), Workers (graphs are
// byte-identical at any worker count), and MaxStates (only complete graphs
// are cached, and a complete graph does not depend on the cap that failed to
// trigger).
//
// The second result is false when the system cannot be described faithfully:
// an action with an executable generator but no declarative definition has
// unhashable semantics. (Actions with both are described by the definition —
// generator agreement is audited separately by Graph.AuditExecs.)
// CanonicalDesc is the cache key; identical systems must produce
// identical descriptors on every run.
//
// aglint:deterministic
func (sys *System) CanonicalDesc() (string, bool) {
	var sb strings.Builder
	sb.WriteString("opentla-system-desc-v1\n")
	sb.WriteString("vars:\n")
	for _, v := range sys.Vars() {
		sb.WriteString("  ")
		sb.WriteString(v)
		sb.WriteString("=[")
		for i, val := range sys.Domains[v] {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(val.String())
		}
		sb.WriteString("]\n")
	}
	for i, c := range sys.Components {
		sb.WriteString("component ")
		sb.WriteString(strconv.Itoa(i))
		sb.WriteString(":\n")
		writeNames(&sb, "  in=", c.Inputs)
		writeNames(&sb, "  out=", c.Outputs)
		writeNames(&sb, "  internal=", c.Internals)
		sb.WriteString("  init=")
		writeExpr(&sb, c.Init)
		sb.WriteByte('\n')
		for _, a := range c.Actions {
			if a.Def == nil {
				return "", false
			}
			sb.WriteString("  action ")
			sb.WriteString(a.Name)
			sb.WriteString(": ")
			sb.WriteString(a.Def.String())
			sb.WriteByte('\n')
		}
		for _, f := range c.Fairness {
			sb.WriteString("  fair ")
			sb.WriteString(f.Kind.String())
			sb.WriteString(" sub=")
			writeExpr(&sb, f.Sub)
			sb.WriteString(" act=")
			writeExpr(&sb, f.Action)
			sb.WriteByte('\n')
		}
	}
	for _, sc := range sys.Constraints {
		sb.WriteString("constraint ")
		sb.WriteString(sc.Name)
		sb.WriteString(": ")
		writeExpr(&sb, sc.Action)
		sb.WriteByte('\n')
	}
	for _, ic := range sys.InitConstraints {
		sb.WriteString("init-constraint: ")
		writeExpr(&sb, ic)
		sb.WriteByte('\n')
	}
	// Reduction changes the constructed graph (representative states, ample
	// edges), so an active configuration must key differently from the full
	// build — and from any other reduction configuration. An inactive config
	// contributes nothing, keeping pre-reduction cache keys stable.
	sb.WriteString(sys.Reduce.Desc())
	return sb.String(), true
}

func writeNames(sb *strings.Builder, label string, names []string) {
	sb.WriteString(label)
	sb.WriteByte('[')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
	}
	sb.WriteString("]\n")
}

func writeExpr(sb *strings.Builder, e form.Expr) {
	if e == nil {
		sb.WriteByte('-')
		return
	}
	sb.WriteString(e.String())
}

// productDesc renders the canonical description of a monitor product: the
// base system's description extended with each monitor's variable, domain,
// and semantic description. It returns false — caching disabled — when the
// base system is indescribable or any monitor lacks a Desc (a hand-rolled
// monitor with opaque callbacks cannot be content-addressed).
func productDesc(sys *System, mons []*Monitor) (string, bool) {
	base, ok := sys.CanonicalDesc()
	if !ok {
		return "", false
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteString("product:\n")
	for _, m := range mons {
		if m.Desc == "" {
			return "", false
		}
		sb.WriteString("monitor ")
		sb.WriteString(m.Var)
		sb.WriteString("=[")
		for i, val := range m.Domain {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(val.String())
		}
		sb.WriteString("] ")
		sb.WriteString(m.Desc)
		sb.WriteByte('\n')
	}
	return sb.String(), true
}
