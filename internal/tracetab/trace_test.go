package tracetab

import (
	"strings"
	"testing"

	"opentla/internal/state"
	"opentla/internal/value"
)

func TestTable(t *testing.T) {
	b := state.Behavior{
		state.FromPairs("x", value.Int(0), "y", value.Int(10)),
		state.FromPairs("x", value.Int(1), "y", value.Int(10)),
	}
	got := Table(b, []string{"x", "y"})
	if !strings.Contains(got, "x:") || !strings.Contains(got, "y:") {
		t.Fatalf("missing rows:\n%s", got)
	}
	if !strings.Contains(got, "10") {
		t.Fatalf("missing value:\n%s", got)
	}
	// Unbound variables render as "-".
	got = Table(b, []string{"z"})
	if !strings.Contains(got, "-") {
		t.Fatalf("unbound variable should render as '-':\n%s", got)
	}
}

func TestLassoTable(t *testing.T) {
	l := &state.Lasso{
		Prefix: []*state.State{state.FromPairs("x", value.Int(0))},
		Cycle:  []*state.State{state.FromPairs("x", value.Int(1)), state.FromPairs("x", value.Int(2))},
	}
	got := LassoTable(l, []string{"x"})
	if !strings.Contains(got, "cycle repeats from column 1") {
		t.Fatalf("missing cycle marker:\n%s", got)
	}
	if !strings.Contains(got, "|") {
		t.Fatalf("missing column marker:\n%s", got)
	}
}

func TestDiff(t *testing.T) {
	a := state.FromPairs("x", value.Int(0), "y", value.Int(0))
	b := a.With("x", value.Int(1))
	d := Diff(state.Behavior{a, b, b})
	if len(d) != 2 || d[0] != "x" || d[1] != "(stutter)" {
		t.Fatalf("Diff = %v", d)
	}
}
