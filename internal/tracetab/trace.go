// Package trace renders behaviors and counterexamples in the row-per-
// variable tabular style of Figure 2 of Abadi & Lamport, "Open Systems in
// TLA", where each column is a state and each row tracks one variable.
package tracetab

import (
	"fmt"
	"strings"

	"opentla/internal/state"
)

// Table renders the behavior as a table with one row per variable (in the
// given order) and one column per state.
func Table(b state.Behavior, vars []string) string {
	cols := make([][]string, len(b))
	for i, s := range b {
		cols[i] = column(s, vars)
	}
	return render(vars, cols, -1)
}

// LassoTable renders a lasso, marking the start of the cycle.
func LassoTable(l *state.Lasso, vars []string) string {
	n := l.Horizon()
	cols := make([][]string, n)
	for i := 0; i < n; i++ {
		cols[i] = column(l.At(i), vars)
	}
	return render(vars, cols, l.PrefixLen())
}

func column(s *state.State, vars []string) []string {
	out := make([]string, len(vars))
	for i, v := range vars {
		if val, ok := s.Get(v); ok {
			out[i] = val.String()
		} else {
			out[i] = "-"
		}
	}
	return out
}

func render(vars []string, cols [][]string, cycleAt int) string {
	nameW := 0
	for _, v := range vars {
		if len(v) > nameW {
			nameW = len(v)
		}
	}
	widths := make([]int, len(cols))
	for c, col := range cols {
		w := 1
		for _, cell := range col {
			if len(cell) > w {
				w = len(cell)
			}
		}
		widths[c] = w
	}
	var sb strings.Builder
	// Header row: state indices, with a cycle marker.
	fmt.Fprintf(&sb, "%-*s", nameW+1, "")
	for c := range cols {
		marker := " "
		if c == cycleAt {
			marker = "|"
		}
		fmt.Fprintf(&sb, "%s%*d", marker, widths[c], c)
	}
	sb.WriteByte('\n')
	for r, v := range vars {
		fmt.Fprintf(&sb, "%-*s:", nameW, v)
		for c := range cols {
			marker := " "
			if c == cycleAt {
				marker = "|"
			}
			fmt.Fprintf(&sb, "%s%*s", marker, widths[c], cols[c][r])
		}
		sb.WriteByte('\n')
	}
	if cycleAt >= 0 {
		fmt.Fprintf(&sb, "(cycle repeats from column %d)\n", cycleAt)
	}
	return sb.String()
}

// Diff returns the names of variables that change between consecutive
// states, one entry per step — useful for narrating counterexamples.
func Diff(b state.Behavior) []string {
	var out []string
	for i := 0; i+1 < len(b); i++ {
		var changed []string
		for _, v := range b[i].Vars() {
			av, _ := b[i].Get(v)
			bv, ok := b[i+1].Get(v)
			if !ok || !av.Equal(bv) {
				changed = append(changed, v)
			}
		}
		if len(changed) == 0 {
			out = append(out, "(stutter)")
		} else {
			out = append(out, strings.Join(changed, ", "))
		}
	}
	return out
}
