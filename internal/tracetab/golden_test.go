package tracetab_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opentla/internal/handshake"
	"opentla/internal/state"
	"opentla/internal/tracetab"
	"opentla/internal/value"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// golden compares got against testdata/<name>.golden, rewriting the file
// under -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenFig2Table pins the rendering of the paper's Figure 2: the
// two-phase handshake protocol sending 37, 4, 19 on channel c, as a
// row-per-variable table plus the per-step change narration.
func TestGoldenFig2Table(t *testing.T) {
	c := handshake.Chan("c")
	b, err := c.Trace(value.Int(0), []value.Value{value.Int(37), value.Int(4), value.Int(19)})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString(tracetab.Table(b, []string{c.Ack(), c.Sig(), c.Val()}))
	sb.WriteString("\nsteps: " + strings.Join(tracetab.Diff(b), " ; ") + "\n")
	golden(t, "fig2_table", sb.String())
}

// TestGoldenLassoTable pins the lasso rendering: prefix columns, the cycle
// marker bar, and the repeat footer.
func TestGoldenLassoTable(t *testing.T) {
	l := &state.Lasso{
		Prefix: []*state.State{
			state.FromPairs("x", value.Int(0), "busy", value.False),
			state.FromPairs("x", value.Int(1), "busy", value.False),
		},
		Cycle: []*state.State{
			state.FromPairs("x", value.Int(2), "busy", value.True),
			state.FromPairs("x", value.Int(3), "busy", value.True),
		},
	}
	golden(t, "lasso_table", tracetab.LassoTable(l, []string{"x", "busy"}))
}

// TestGoldenDiff pins the change narration, including stutters and
// unbinding.
func TestGoldenDiff(t *testing.T) {
	a := state.FromPairs("x", value.Int(0), "y", value.Int(5))
	b := a.With("x", value.Int(1))
	c := b.With("y", value.Int(6)).With("x", value.Int(2))
	got := strings.Join(tracetab.Diff(state.Behavior{a, b, b, c}), "\n") + "\n"
	golden(t, "diff", got)
}
