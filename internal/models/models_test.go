package models

import (
	"testing"

	"opentla/internal/vet"
)

// TestAllModelsVetClean is the in-tree version of the CI specvet gate:
// every bundled model must analyze with zero error-severity findings.
func TestAllModelsVetClean(t *testing.T) {
	for _, m := range All() {
		t.Run(m.Name, func(t *testing.T) {
			res := m.Vet()
			if res.HasErrors() {
				t.Errorf("model %s has vet errors:\n%s", m.Name, res)
			}
			for _, d := range res.Filter(vet.Warn) {
				t.Logf("%s: %s", m.Name, d)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"handshake", "queue", "doublequeue", "arbiter", "circular"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	for _, n := range want {
		m, err := ByName(n)
		if err != nil || m.Name != n {
			t.Errorf("ByName(%q) = %v, %v", n, m.Name, err)
		}
		if len(m.Components) == 0 || m.Doc == "" || m.Domains == nil {
			t.Errorf("model %s is underspecified: %+v", n, m)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted an unknown model")
	}
}

// TestInterleavedModelsHaveCoverage pins that the models claiming the
// Disjoint hypothesis actually carry recognizable constraints: no SV020 or
// SV021 findings.
func TestInterleavedModelsHaveCoverage(t *testing.T) {
	for _, m := range All() {
		if !m.Interleaved {
			continue
		}
		res := m.Vet()
		for _, d := range res.Diagnostics {
			if d.Code == "SV020" || d.Code == "SV021" {
				t.Errorf("model %s: %s", m.Name, d)
			}
		}
	}
}
