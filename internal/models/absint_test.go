package models

import (
	"strings"
	"testing"

	"opentla/internal/absint"
	"opentla/internal/form"
	"opentla/internal/vet"
)

// TestRegistryBoundDominatesExplored is the soundness cross-check for the
// semantic pass's state-space bound (the detector the bound mutants of
// internal/faultinject must fail): for every bundled model and every
// example composition, the analyzer reports a finite bound that dominates
// the number of states exhaustive exploration actually finds. Run with
// -race and -cpu 1,4.
func TestRegistryBoundDominatesExplored(t *testing.T) {
	for _, m := range append(All(), Examples()...) {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			res := m.Vet()
			if res.Bound == nil {
				t.Fatal("vet attached no bound")
			}
			if !res.Bound.Finite {
				t.Fatalf("bound is not finite: %s", res.Bound)
			}
			g, err := m.System().Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			explored := uint64(g.NumStates())
			if res.Bound.States < explored {
				t.Errorf("bound %s does not dominate %d explored states (UNSOUND)",
					res.Bound, explored)
			}
			t.Logf("bound %s, explored %d states", res.Bound, explored)
		})
	}
}

// TestRegistryNoSemanticFalsePositives pins the semantic pass's precision
// floor: the bundled models are all well-formed, so any SV1xx finding of
// warn severity or above is a false positive.
func TestRegistryNoSemanticFalsePositives(t *testing.T) {
	for _, m := range append(All(), Examples()...) {
		res := m.Vet()
		for _, d := range res.Filter(vet.Warn) {
			if strings.HasPrefix(d.Code, "SV1") {
				t.Errorf("%s: false semantic finding: %s", m.Name, d)
			}
		}
	}
}

// TestRegistryInferredWritesMatchOwnership cross-checks the inferred
// write-sets against the declared partition: for every bundled model, each
// component's actions write only variables the component owns. The
// declarations say the same thing (SV002/SV003 guard it syntactically);
// here the abstract interpreter must reach the same conclusion from the
// action definitions alone.
func TestRegistryInferredWritesMatchOwnership(t *testing.T) {
	for _, m := range append(All(), Examples()...) {
		var cons []form.Expr
		for _, c := range m.Constraints {
			cons = append(cons, c.Action)
		}
		a := absint.Analyze(m.Components, cons, absint.Options{Declared: m.Domains})
		for _, c := range m.Components {
			owned := map[string]bool{}
			for _, v := range c.Owned() {
				owned[v] = true
			}
			for v := range a.ComponentWrites(c.Name) {
				if !owned[v] {
					t.Errorf("%s/%s: inferred write to %q, which the component does not own",
						m.Name, c.Name, v)
				}
			}
		}
	}
}
