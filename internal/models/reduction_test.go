package models

import (
	"fmt"
	"strings"
	"testing"

	"opentla/internal/check"
	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/metrics"
	"opentla/internal/obs"
	"opentla/internal/reduce"
	"opentla/internal/state"
	"opentla/internal/ts"
)

// reductionModes returns the reduction configurations to cross-check for a
// model: POR alone always, and the symmetry combinations when the model
// declares a group.
func reductionModes(m Model) []reduce.Options {
	modes := []reduce.Options{{POR: true}}
	if m.Symmetry != nil {
		modes = append(modes, reduce.Options{Sym: true}, reduce.Options{POR: true, Sym: true})
	}
	return modes
}

// reductionProbe is a safety property checked on both the full and the
// reduced graph. symOK marks probes that are invariant under the model's
// declared symmetry group; only those may be cross-checked on
// symmetry-reduced graphs (a non-invariant probe is allowed to disagree,
// so a disagreement would not witness a reduction bug).
type reductionProbe struct {
	name    string
	f       form.Formula
	visible []string
	symOK   bool
}

// buildProbes assembles the cross-check properties for a model:
//
//   - boxes: the conjunction of every component's □[N]_v — holds by
//     construction, and is group-invariant because symmetry validation
//     checks exactly that the group permutes the component multiset.
//   - init-pin: □(v = v₀ for every symmetry-safe variable v), pinning the
//     state to its initial binding. Violated whenever any such variable
//     ever changes, so it exercises the counterexample path. Variables of
//     the value orbit are excluded (v = 0 is not invariant under value
//     permutation); block variables stay because the models' initial
//     bindings assign equal values across block positions.
//   - pin-one: the init pin on a single variable, giving POR a small
//     visible set so the ample machinery actually prunes. Not
//     symmetry-invariant in general (it names one block position), so it
//     runs only on POR-only graphs.
func buildProbes(m Model, full *ts.Graph) []reductionProbe {
	var boxes []form.Formula
	for _, c := range m.Components {
		boxes = append(boxes, c.Box())
	}
	allVars := full.States[full.Inits[0]].Vars()

	orbit := make(map[string]bool)
	if m.Symmetry != nil {
		for _, v := range m.Symmetry.Vars {
			orbit[v] = true
		}
	}
	init := full.States[full.Inits[0]]
	var pins []form.Expr
	var pinVars []string
	for _, v := range allVars {
		if orbit[v] {
			continue
		}
		pins = append(pins, form.Eq(form.Var(v), form.Const(init.MustGet(v))))
		pinVars = append(pinVars, v)
	}

	probes := []reductionProbe{
		{name: "boxes", f: form.AndF(boxes...), visible: allVars, symOK: true},
		{name: "init-pin", f: form.AlwaysPred(form.And(pins...)), visible: pinVars, symOK: true},
		{name: "pin-one", f: form.AlwaysPred(pins[0]), visible: pinVars[:1], symOK: false},
	}
	return probes
}

func buildModel(t *testing.T, m Model, rd *reduce.Config, workers int) *ts.Graph {
	t.Helper()
	sys := m.System()
	sys.Reduce = rd
	sys.Workers = workers
	g, err := sys.Build()
	if err != nil {
		t.Fatalf("%s: build (reduce=%v): %v", m.Name, rd, err)
	}
	return g
}

// TestReducedVsFullRegistry is the soundness cross-check the reduction
// mutants of internal/faultinject must fail: for every bundled model and
// every reduction mode, the reduced graph decides the same safety verdicts
// as the full graph, produces a counterexample exactly when the full check
// does, and never has more states. Run with -race and -cpu 1,4.
func TestReducedVsFullRegistry(t *testing.T) {
	// Value symmetry collapses data-distinguishing states in these models,
	// so sym modes must strictly shrink them; a non-shrinking "reduction"
	// means the canonicalizer silently stopped firing.
	strictSym := map[string]bool{"handshake": true, "queue": true, "doublequeue": true}

	for _, m := range All() {
		t.Run(m.Name, func(t *testing.T) {
			full := buildModel(t, m, nil, 0)
			probes := buildProbes(m, full)
			for _, o := range reductionModes(m) {
				for _, p := range probes {
					if o.Sym && !p.symOK {
						continue
					}
					t.Run(o.String()+"/"+p.name, func(t *testing.T) {
						rd := &reduce.Config{Options: o, Symmetry: m.Symmetry, Visible: p.visible}
						red := buildModel(t, m, rd, 0)
						if len(red.States) > len(full.States) {
							t.Errorf("reduced graph has MORE states than full: %d > %d",
								len(red.States), len(full.States))
						}
						if o.Sym && strictSym[m.Name] && len(red.States) >= len(full.States) {
							t.Errorf("value symmetry did not shrink the graph: %d >= %d states",
								len(red.States), len(full.States))
						}
						fr, err := check.Safety(full, p.f)
						if err != nil {
							t.Fatalf("full check: %v", err)
						}
						rr, err := check.Safety(red, p.f)
						if err != nil {
							t.Fatalf("reduced check: %v", err)
						}
						if fr.Holds != rr.Holds {
							t.Errorf("verdict mismatch: full holds=%v, reduced holds=%v (%s / %s)",
								fr.Holds, rr.Holds, fr.Violation, rr.Violation)
						}
						if !rr.Holds && len(rr.Trace) == 0 {
							t.Errorf("reduced check violated without a counterexample trace")
						}
						if !fr.Holds && len(fr.Trace) == 0 {
							t.Errorf("full check violated without a counterexample trace")
						}
						t.Logf("states full=%d reduced=%d holds=%v", len(full.States), len(red.States), rr.Holds)
					})
				}
			}
		})
	}
}

// reducedSignature renders a reduced graph's observable structure including
// per-edge real successor states, so two builds are identical iff their
// signatures match.
func reducedSignature(g *ts.Graph) string {
	var sb strings.Builder
	for id, s := range g.States {
		fmt.Fprintf(&sb, "%d:%s\n", id, s.Key())
	}
	fmt.Fprintf(&sb, "inits:%v reduced:%v\n", g.Inits, g.Reduced())
	for id := range g.States {
		fmt.Fprintf(&sb, "%d ->", id)
		g.ForEachSuccStep(id, func(to int, real *state.State) bool {
			fmt.Fprintf(&sb, " %d(%s)", to, real.Key())
			return true
		})
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestReducedBuildDeterministic extends the worker-count determinism
// guarantee to reduced builds: canonical numbering, adjacency, AND the
// per-edge real successors must be byte-identical at any worker count.
func TestReducedBuildDeterministic(t *testing.T) {
	for _, m := range All() {
		for _, o := range reductionModes(m) {
			t.Run(m.Name+"/"+o.String(), func(t *testing.T) {
				mk := func(workers int) *ts.Graph {
					rd := &reduce.Config{Options: o, Symmetry: m.Symmetry}
					return buildModel(t, m, rd, workers)
				}
				want := reducedSignature(mk(1))
				for _, workers := range []int{2, 4, 8} {
					if got := reducedSignature(mk(workers)); got != want {
						t.Errorf("reduced graph at workers=%d differs from sequential", workers)
					}
				}
			})
		}
	}
}

// TestReducedBuildFlightRecorder pins the observability side of -reduce
// por,sym: a reduced build through an instrumented meter must land a
// "reduce" event in the flight-recorder ring, a reduction section in the
// run report, and the opentla_reduce_* counters in the metric snapshot.
// Run with -race and -cpu 1,4: the recorder seams are the only shared
// state between the build workers and the coordinator.
func TestReducedBuildFlightRecorder(t *testing.T) {
	for _, m := range All() {
		if m.Symmetry == nil {
			continue // por,sym needs a declared group
		}
		t.Run(m.Name, func(t *testing.T) {
			meter := engine.NoLimit()
			rec := obs.New(meter)
			reg := metrics.NewRegistry()
			rec.SetMetrics(reg)

			// A small visible set (as -reduce derives from the checked
			// property) keeps the ample machinery engaged; without one POR
			// declines and only symmetry runs.
			full := buildModel(t, m, nil, 0)
			probes := buildProbes(m, full)

			sys := m.System()
			sys.Reduce = &reduce.Config{
				Options:  reduce.Options{POR: true, Sym: true},
				Symmetry: m.Symmetry,
				Visible:  probes[len(probes)-1].visible,
			}
			sys.Workers = 4
			if _, err := sys.BuildWith(meter); err != nil {
				t.Fatalf("reduced build: %v", err)
			}

			// The ring may also hold advisory reduce events ("POR
			// disabled: ..."); at least one must carry the tallies.
			var statsEvents int
			for _, e := range rec.Events() {
				if e.Kind == "reduce" && strings.Contains(e.Msg, "sym-collapsed") {
					statsEvents++
					if !strings.Contains(e.Msg, "ample") {
						t.Errorf("reduce event %q missing the ample tally", e.Msg)
					}
				}
			}
			if statsEvents == 0 {
				t.Fatalf("no reduce statistics event in the flight recorder ring: %+v", rec.Events())
			}

			rep := rec.Finish("test", obs.Config{Model: m.Name, Workers: 4}, engine.Holds, "")
			if rep.Reduction == nil {
				t.Fatal("report has no reduction section")
			}
			if rep.Reduction.AmpleStates+rep.Reduction.FullStates == 0 {
				t.Errorf("reduction section counted no expansions: %+v", rep.Reduction)
			}

			byName := map[string]int64{}
			for _, p := range rep.Metrics {
				if p.Labels == "" {
					byName[p.Name] = p.Value
				}
			}
			if byName["opentla_reduce_ample_states_total"]+byName["opentla_reduce_full_states_total"] == 0 {
				t.Errorf("opentla_reduce_* counters absent from metrics snapshot: %v", byName)
			}
		})
	}
}
