// Package models is the registry of bundled example systems — the paper's
// running examples packaged as component compositions that the specvet
// analyzer and CI can enumerate without knowing each package's
// constructors. Each entry lists the composed components, the step
// constraints the composition assumes (its Disjoint hypotheses), and the
// finite domains used for the Exec-generator audit.
package models

import (
	"fmt"
	"sort"

	"opentla/internal/arbiter"
	"opentla/internal/circular"
	"opentla/internal/form"
	"opentla/internal/handshake"
	"opentla/internal/queue"
	"opentla/internal/reduce"
	"opentla/internal/spec"
	"opentla/internal/ts"
	"opentla/internal/value"
	"opentla/internal/vet"
)

// Model is one bundled example system.
type Model struct {
	// Name is the registry key used by specvet -model.
	Name string
	// Doc is a one-line description.
	Doc string
	// Components are the composed canonical-form components.
	Components []*spec.Component
	// Constraints are the composition's step constraints — the Disjoint
	// hypotheses it assumes.
	Constraints []ts.StepConstraint
	// Domains are the finite variable domains, enabling the Exec audit.
	Domains map[string][]value.Value
	// Interleaved records whether the composition's correctness argument
	// relies on the Disjoint hypothesis of Proposition 4; it raises
	// missing-coverage findings from info to warn.
	Interleaved bool
	// Symmetry is the model's declared state-space symmetry (value and/or
	// block), if any; -reduce=sym validates and exploits it.
	Symmetry *reduce.Symmetry
}

// System assembles the model as a buildable transition system. Each call
// returns a fresh value, so callers may set Workers, Cache, or Reduce
// without affecting other users of the registry.
func (m Model) System() *ts.System {
	return &ts.System{
		Name:        m.Name,
		Components:  m.Components,
		Constraints: m.Constraints,
		Domains:     m.Domains,
	}
}

// Vet runs the static analyzer over the model.
func (m Model) Vet() *vet.Result {
	return vet.Composition(m.Name, m.Components, m.Constraints, vet.Options{
		Domains:         m.Domains,
		RequireDisjoint: m.Interleaved,
	})
}

// All returns every bundled model, in stable registry order.
func All() []Model {
	qcfg := queue.Config{N: 1, Vals: 2}
	hc := handshake.Chan("c")
	hvals := value.Ints(0, 1)
	return []Model{
		{
			Name: "handshake",
			Doc:  "two-phase handshake protocol (§A.1): sender and receiver on one channel",
			Components: []*spec.Component{
				handshake.Sender("sender", hc, hvals),
				handshake.Receiver("receiver", hc),
			},
			Constraints: stepConstraints("disjoint(snd,ack)",
				form.DisjointSteps(hc.SndVars(), []string{hc.Ack()})),
			Domains:     hc.Domains(hvals),
			Interleaved: true,
			Symmetry:    handshake.ValueSymmetry(hc, hvals),
		},
		{
			Name: "queue",
			Doc:  "single N-queue with its environment (Fig. 3, §A.3)",
			Components: []*spec.Component{
				queue.QE("QE", queue.In, queue.Out, qcfg.ValueDomain()),
				queue.QM("QM", qcfg.N, queue.In, queue.Out, "q", qcfg.ValueDomain()),
			},
			Domains:  qcfg.Domains(),
			Symmetry: qcfg.SingleSymmetry(),
		},
		{
			Name: "doublequeue",
			Doc:  "two queues in series implementing a double queue (Fig. 7–9, §A.4)",
			Components: []*spec.Component{
				queue.QE("QE", queue.In, queue.Out, qcfg.ValueDomain()),
				qcfg.FirstQueue(),
				qcfg.SecondQueue(),
			},
			Constraints: queue.GConstraints(),
			Domains:     qcfg.DoubleDomains(),
			Interleaved: true,
			Symmetry:    qcfg.DoubleSymmetry(),
		},
		{
			Name: "arbiter",
			Doc:  "mutual-exclusion arbiter with two clients (§5 example)",
			Components: []*spec.Component{
				arbiter.Arbiter(),
				arbiter.Client(1),
				arbiter.Client(2),
			},
			Constraints: arbiter.GConstraints(),
			Domains:     arbiter.Domains(),
			Interleaved: true,
			Symmetry:    arbiter.Symmetry(),
		},
		{
			Name: "circular",
			Doc:  "two copy processes in a circle (§1): the circularity example",
			Components: []*spec.Component{
				circular.CopyProcess("Pc", "c", "d"),
				circular.CopyProcess("Pd", "d", "c"),
			},
			Constraints: stepConstraints("disjoint(c,d)",
				form.DisjointSteps([]string{"c"}, []string{"d"})),
			Domains:     circular.Domains(),
			Interleaved: true,
			Symmetry:    circular.Symmetry(),
		},
	}
}

// Names returns the registry keys in order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, m := range all {
		out[i] = m.Name
	}
	return out
}

// ByName returns the named model.
func ByName(name string) (Model, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	known := Names()
	sort.Strings(known)
	return Model{}, fmt.Errorf("unknown model %q (known: %v)", name, known)
}

func stepConstraints(name string, exprs []form.Expr) []ts.StepConstraint {
	out := make([]ts.StepConstraint, len(exprs))
	for i, e := range exprs {
		out[i] = ts.StepConstraint{Name: name, Action: e}
	}
	return out
}
