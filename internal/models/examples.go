package models

import (
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/value"
)

// Examples returns the compositions built by the standalone programs under
// examples/ that are not already registry models (examples/handshake,
// examples/doublequeue, examples/arbiter, and examples/circular all drive
// registry systems). Keeping them enumerable lets specvet -examples and CI
// vet the demo specs with the same analyzer the bundled models get.
//
// The component definitions mirror examples/quickstart/main.go; that file
// stays self-contained on purpose (it is the copy-paste starting point the
// README points at), so changes here must be mirrored there.
func Examples() []Model {
	domains := map[string][]value.Value{"req": value.Bits(), "grant": value.Bits()}
	serve := form.And(
		form.Eq(form.PrimedVar("grant"), form.Var("req")),
		form.Unchanged("req"),
	)
	server := &spec.Component{
		Name:    "server",
		Inputs:  []string{"req"},
		Outputs: []string{"grant"},
		Init:    form.Eq(form.Var("grant"), form.IntC(0)),
		Actions: []spec.Action{{Name: "Serve", Def: serve}},
		Fairness: []spec.Fairness{
			{Kind: form.Weak, Action: serve},
		},
	}
	toggle := form.And(
		form.Eq(form.Var("grant"), form.Var("req")),
		form.Ne(form.PrimedVar("req"), form.Var("req")),
		form.Unchanged("grant"),
	)
	clientEnv := &spec.Component{
		Name:    "client-assumption",
		Inputs:  []string{"grant"},
		Outputs: []string{"req"},
		Init:    form.Eq(form.Var("req"), form.IntC(0)),
		Actions: []spec.Action{{Name: "Toggle", Def: toggle}},
	}
	return []Model{
		{
			Name:       "quickstart",
			Doc:        "examples/quickstart: polite client toggling req against a mirroring server",
			Components: []*spec.Component{clientEnv, server},
			Domains:    domains,
		},
	}
}
