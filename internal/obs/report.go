package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"opentla/internal/engine"
	"opentla/internal/metrics"
)

// SchemaVersion identifies the run-report JSON schema. Bump it on any
// incompatible change; the golden file internal/obs/testdata/report.golden
// pins the current shape. Version 2 added the cache section (graph-cache
// hit/miss/corruption and checkpoint/resume counters); version 3 added the
// vet section (static-analysis pre-check results); version 4 added the
// self-healing cache counters (quarantined, temp_swept, gc_removed,
// retries) and the "stall"/"cache-*" flight-recorder event kinds;
// version 5 added the reduction section (POR/symmetry statistics), the
// config "reduce" field, and the "reduce" flight-recorder event kind;
// version 6 added the metrics section (performance-telemetry counter/
// gauge/histogram snapshot, present when the run attached a registry via
// -trace or -metrics-out); version 7 added the vet section's bound field
// (the semantic pass's state-space cardinality upper bound).
const SchemaVersion = 7

// Report is the versioned machine-readable run report written by -report.
type Report struct {
	SchemaVersion int       `json:"schema_version"`
	Tool          string    `json:"tool"`
	Config        Config    `json:"config"`
	Build         BuildInfo `json:"build_info"`
	// Verdict is the three-valued outcome (HOLDS, VIOLATED, UNKNOWN).
	Verdict       string `json:"verdict"`
	UnknownReason string `json:"unknown_reason,omitempty"`
	// ExhaustedPhase names the span path that was open when the budget
	// latched ("run/theorem:X/H2b/build:..."), empty if it never did.
	ExhaustedPhase string `json:"exhausted_phase,omitempty"`
	// Stats is the final cumulative RunStats of the governing meter.
	Stats Stats `json:"stats"`
	// Hypotheses lists per-obligation outcomes, for theorem-shaped runs.
	Hypotheses []Hypothesis `json:"hypotheses,omitempty"`
	// Vet summarizes the static-analysis pre-check, present when the run
	// executed one (-vet=strict or -vet=warn).
	Vet *VetReport `json:"vet,omitempty"`
	// Cache summarizes graph-cache activity, present when any counter is
	// nonzero (i.e. a cache was configured and consulted).
	Cache *CacheStats `json:"cache,omitempty"`
	// Reduction summarizes state-space reduction activity (-reduce),
	// present when any exploration reported reduction statistics.
	Reduction *ReductionReport `json:"reduction,omitempty"`
	// Metrics is the performance-telemetry snapshot (sorted by name),
	// present when the run attached a metric registry (-trace or
	// -metrics-out).
	Metrics []metrics.Point `json:"metrics,omitempty"`
	// Span is the root of the phase tree; child spans carry per-phase
	// RunStats deltas that account for the top-level Stats.
	Span *Span `json:"span"`
	// Events is the flight-recorder tail, included when the verdict is
	// UNKNOWN (budget exhaustion or a contained engine failure).
	Events        []EventJSON `json:"events,omitempty"`
	GeneratedUnix int64       `json:"generated_at_unix"`
}

// Config records the run configuration, for reproducibility.
type Config struct {
	Model          string `json:"model,omitempty"`
	N              int    `json:"n,omitempty"`
	K              int    `json:"k,omitempty"`
	Workers        int    `json:"workers"`
	BudgetMS       int64  `json:"budget_ms"`
	MaxStates      int    `json:"max_states"`
	MaxTransitions int    `json:"max_transitions"`
	// Reduce is the -reduce mode of the run ("por", "sym", "por,sym"),
	// empty when reduction was off.
	Reduce string `json:"reduce,omitempty"`
}

// BuildInfo identifies the binary that produced the report.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
}

// Stats is the JSON rendering of engine.RunStats. In a Span it is the
// phase's delta for the monotonic counters (states, transitions, sccs),
// while peak_frontier is the cumulative peak observed by the end of the
// phase (a running maximum has no meaningful delta).
type Stats struct {
	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	SCCs         int     `json:"sccs"`
	PeakFrontier int     `json:"peak_frontier"`
	ElapsedMS    float64 `json:"elapsed_ms"`
}

// CacheStats counts graph-cache outcomes over one run, aggregated from the
// corresponding flight-recorder events.
type CacheStats struct {
	// Hits counts complete graphs served from the cache (graph construction
	// skipped entirely).
	Hits int `json:"hits"`
	// Misses counts cache consultations that found no entry.
	Misses int `json:"misses"`
	// Corrupt counts entries or checkpoints that existed but were unusable
	// (decode failure, validation failure, write failure); each degraded to
	// a cold build.
	Corrupt int `json:"corrupt"`
	// CheckpointsSaved counts budget-exhaustion checkpoints persisted.
	CheckpointsSaved int `json:"checkpoints_saved"`
	// Resumes counts explorations continued from a saved checkpoint.
	Resumes int `json:"resumes"`
	// Quarantined counts unreadable entries renamed aside (self-healing:
	// the entry can never block a cold rebuild again).
	Quarantined int `json:"quarantined"`
	// TempSwept counts orphaned temp files removed at cache open.
	TempSwept int `json:"temp_swept"`
	// GCRemoved counts files deleted by garbage collection (size-bound
	// evictions plus junk cleanup).
	GCRemoved int `json:"gc_removed"`
	// Retries counts transient write failures absorbed by the bounded
	// retry-with-backoff path.
	Retries int `json:"retries"`
}

func (c CacheStats) any() bool {
	return c != CacheStats{}
}

// ReductionReport summarizes state-space reduction over one run, summed
// across every exploration that ran with an active reduce.Config.
type ReductionReport struct {
	// AmpleStates and FullStates count expanded states by whether POR
	// chose an ample subset or fell back to full expansion.
	AmpleStates int64 `json:"ample_states"`
	FullStates  int64 `json:"full_states"`
	// AmpleSuccs and FullSuccs count the successors those expansions
	// produced; their ratio is the POR edge-pruning factor.
	AmpleSuccs int64 `json:"ample_succs"`
	FullSuccs  int64 `json:"full_succs"`
	// SymCollapsed counts successors rewritten to a distinct canonical
	// representative by symmetry canonicalization.
	SymCollapsed int64 `json:"sym_collapsed"`
}

// VetReport summarizes a static-analysis pre-check (package vet) inside a
// run report.
type VetReport struct {
	// Mode is the -vet mode the run used ("strict" or "warn").
	Mode string `json:"mode"`
	// Errors, Warnings, and Infos count diagnostics by severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
	// Diagnostics lists the individual findings, in analyzer order.
	Diagnostics []VetDiagnostic `json:"diagnostics,omitempty"`
	// Bound is the semantic pass's state-space cardinality upper bound,
	// present when the analysis inferred one.
	Bound *VetBound `json:"bound,omitempty"`
}

// VetBound serializes the analyzer's state-space bound.
type VetBound struct {
	// Finite reports whether every variable's reachable domain is
	// provably finite.
	Finite bool `json:"finite"`
	// States is the bound itself, meaningful when Finite; the product
	// saturates at 2^64-1.
	States uint64 `json:"states"`
}

// VetDiagnostic is one serialized analyzer finding.
type VetDiagnostic struct {
	Code      string `json:"code"`
	Severity  string `json:"severity"`
	Component string `json:"component,omitempty"`
	Action    string `json:"action,omitempty"`
	Message   string `json:"message"`
	Hint      string `json:"hint,omitempty"`
}

// Hypothesis is one discharged (or failed) proof obligation.
type Hypothesis struct {
	Name   string `json:"name"`
	Holds  bool   `json:"holds"`
	Detail string `json:"detail,omitempty"`
}

// Span is one node of the serialized phase tree.
type Span struct {
	Name string `json:"name"`
	// StartMS is the span's start relative to the recorder's start.
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
	Stats   Stats   `json:"stats"`
	// Open marks a span that never closed (the run aborted inside it).
	Open     bool    `json:"open,omitempty"`
	Children []*Span `json:"children,omitempty"`
}

// EventJSON is one serialized flight-recorder entry.
type EventJSON struct {
	TMS  float64 `json:"t_ms"`
	Kind string  `json:"kind"`
	Msg  string  `json:"msg"`
}

func statsJSON(s engine.RunStats) Stats {
	return Stats{
		States:       s.States,
		Transitions:  s.Transitions,
		SCCs:         s.SCCs,
		PeakFrontier: s.PeakFrontier,
		ElapsedMS:    ms(s.Elapsed),
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (r *Recorder) spanJSON(s *span) *Span {
	end, statsEnd := s.end, s.statsEnd
	if s.open {
		// The run aborted inside this span; snapshot it now.
		end, statsEnd = r.now(), r.meter.Stats()
	}
	out := &Span{
		Name:    s.name,
		StartMS: ms(s.start.Sub(r.start)),
		DurMS:   ms(end.Sub(s.start)),
		Open:    s.open,
		Stats: Stats{
			States:       statsEnd.States - s.statsStart.States,
			Transitions:  statsEnd.Transitions - s.statsStart.Transitions,
			SCCs:         statsEnd.SCCs - s.statsStart.SCCs,
			PeakFrontier: statsEnd.PeakFrontier,
			ElapsedMS:    ms(statsEnd.Elapsed - s.statsStart.Elapsed),
		},
	}
	for _, c := range s.children {
		out.Children = append(out.Children, r.spanJSON(c))
	}
	return out
}

// Finish closes the root span and assembles the run report. The flight
// recorder is dumped into the report when the verdict is Unknown, so
// exhausted and panicked runs stay diagnosable. Nil-safe: a nil recorder
// yields a minimal report with no span tree.
func (r *Recorder) Finish(tool string, cfg Config, v engine.Verdict, unknownReason string) *Report {
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Tool:          tool,
		Config:        cfg,
		Build:         buildInfo(),
		Verdict:       v.String(),
		UnknownReason: unknownReason,
		GeneratedUnix: time.Now().Unix(),
	}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	if r.root.open {
		r.root.end = r.now()
		r.root.statsEnd = r.meter.Stats()
		r.root.open = false
	}
	rep.ExhaustedPhase = r.exhausted
	rep.Span = r.spanJSON(r.root)
	r.mu.Unlock()
	rep.Stats = statsJSON(r.meter.Stats())
	if cs := r.CacheStats(); cs.any() {
		rep.Cache = &cs
	}
	if rs := r.Reduction(); rs != (engine.ReductionStats{}) {
		rep.Reduction = &ReductionReport{
			AmpleStates:  rs.AmpleStates,
			FullStates:   rs.FullStates,
			AmpleSuccs:   rs.AmpleSuccs,
			FullSuccs:    rs.FullSuccs,
			SymCollapsed: rs.SymCollapsed,
		}
	}
	if reg := r.Metrics(); reg != nil {
		rep.Metrics = reg.Snapshot()
	}
	if v == engine.Unknown {
		for _, e := range r.Events() {
			rep.Events = append(rep.Events, EventJSON{TMS: ms(e.T), Kind: e.Kind, Msg: e.Msg})
		}
	}
	return rep
}

func buildInfo() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	if info, ok := debug.ReadBuildInfo(); ok {
		bi.Module = info.Main.Path
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				bi.Revision = s.Value
			}
		}
	}
	return bi
}

// Normalize zeroes every wall-clock-dependent field of the report so two
// reports of the same run are byte-identical: generation time, build info,
// and the meter-elapsed milliseconds of every stats block. Span start/dur
// and event times are kept (they come from the recorder clock, which tests
// inject). Used by the golden-file schema test and by diff tooling.
func (rep *Report) Normalize() {
	rep.GeneratedUnix = 0
	rep.Build = BuildInfo{}
	rep.Stats.ElapsedMS = 0
	var walk func(s *Span)
	walk = func(s *Span) {
		if s == nil {
			return
		}
		s.Stats.ElapsedMS = 0
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(rep.Span)
}

// Marshal renders the report as indented JSON with a trailing newline.
func (rep *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the report to path.
func WriteFile(path string, rep *Report) error {
	data, err := rep.Marshal()
	if err != nil {
		return fmt.Errorf("marshaling run report: %w", err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing run report: %w", err)
	}
	return nil
}
