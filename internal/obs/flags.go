package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"opentla/internal/metrics"
	"opentla/internal/trace"
)

// ProfileFlags carries the pprof flags shared by every CLI.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
}

// AddProfileFlags registers -cpuprofile and -memprofile.
func AddProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	p := &ProfileFlags{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling if requested and returns the stop func, which
// finishes the CPU profile and writes the heap profile. The stop func is
// safe to call when no profiling was requested.
func (p *ProfileFlags) Start() (func() error, error) {
	var cpu *os.File
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		cpu = f
	}
	return func() error {
		var first error
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil && first == nil {
				first = err
			}
		}
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("creating heap profile: %w", err)
				}
				return first
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// Flags bundles the observability flags of the checking CLIs.
type Flags struct {
	// Progress turns on the live-progress line.
	Progress bool
	// ProgressInterval is the progress ticker period (default 1s). It must
	// be positive; Validate rejects anything else.
	ProgressInterval time.Duration
	// Report is the run-report output path ("" = none).
	Report string
	// StallTimeout arms the stall watchdog: a build making zero progress
	// for this long is aborted to an UNKNOWN verdict (0 = off).
	StallTimeout time.Duration
	// Trace is the Chrome Trace Event JSON output path ("" = no tracing).
	Trace string
	// MetricsOut is the Prometheus text exposition output path ("" = no
	// metric registry).
	MetricsOut string
	*ProfileFlags
}

// AddFlags registers -progress, -progress-interval, -report, -stall-timeout,
// -trace, -metrics-out, -cpuprofile, and -memprofile.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{ProfileFlags: AddProfileFlags(fs)}
	fs.BoolVar(&f.Progress, "progress", false,
		"print a live progress line to stderr (period set by -progress-interval)")
	fs.DurationVar(&f.ProgressInterval, "progress-interval", time.Second,
		"live-progress ticker period (must be > 0)")
	fs.StringVar(&f.Report, "report", "",
		"write a machine-readable JSON run report to this file")
	fs.DurationVar(&f.StallTimeout, "stall-timeout", 0,
		"abort to UNKNOWN when no exploration progress happens for this long (e.g. 30s; 0 = off)")
	fs.StringVar(&f.Trace, "trace", "",
		"write a Chrome Trace Event JSON timeline (per-worker tracks) to this file")
	fs.StringVar(&f.MetricsOut, "metrics-out", "",
		"write Prometheus text exposition of the run's performance counters to this file")
	return f
}

// Validate rejects flag combinations AddFlags cannot: currently a
// non-positive -progress-interval, which would wedge or spin the ticker.
func (f *Flags) Validate() error {
	if f.ProgressInterval <= 0 {
		return fmt.Errorf("-progress-interval must be positive, got %v", f.ProgressInterval)
	}
	return nil
}

// ProgressPeriod returns the ticker period StartProgress should use: the
// configured interval when -progress is on, 0 (disabled) otherwise.
func (f *Flags) ProgressPeriod() time.Duration {
	if f.Progress {
		return f.ProgressInterval
	}
	return 0
}

// Enabled reports whether the flags call for a recorder.
func (f *Flags) Enabled() bool {
	return f.Progress || f.Report != "" || f.StallTimeout > 0 || f.Trace != "" || f.MetricsOut != ""
}

// Telemetry creates and attaches the performance-telemetry sinks the flags
// ask for — a tracer for -trace, a metric registry for -metrics-out (or for
// the report's metrics section when tracing): the registry rides along with
// the tracer so a captured timeline always has its counters next to it.
// Returns the sinks (nil when not requested) for the CLI to write out after
// the run. Nil-safe on a nil recorder (returns nils: no recorder, no seam).
func (f *Flags) Telemetry(rec *Recorder) (*trace.Tracer, *metrics.Registry) {
	if rec == nil {
		return nil, nil
	}
	var tr *trace.Tracer
	var reg *metrics.Registry
	if f.Trace != "" {
		tr = trace.New()
		rec.SetTracer(tr)
	}
	if f.MetricsOut != "" || f.Trace != "" {
		reg = metrics.NewRegistry()
		rec.SetMetrics(reg)
	}
	return tr, reg
}

// WriteTelemetry writes the -trace and -metrics-out files, if requested.
func (f *Flags) WriteTelemetry(tr *trace.Tracer, reg *metrics.Registry) error {
	if f.Trace != "" && tr != nil {
		if err := tr.WriteFile(f.Trace); err != nil {
			return err
		}
	}
	if f.MetricsOut != "" && reg != nil {
		if err := reg.WriteFile(f.MetricsOut); err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	return nil
}
