package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"
)

// ProfileFlags carries the pprof flags shared by every CLI.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
}

// AddProfileFlags registers -cpuprofile and -memprofile.
func AddProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	p := &ProfileFlags{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	return p
}

// Start begins CPU profiling if requested and returns the stop func, which
// finishes the CPU profile and writes the heap profile. The stop func is
// safe to call when no profiling was requested.
func (p *ProfileFlags) Start() (func() error, error) {
	var cpu *os.File
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		cpu = f
	}
	return func() error {
		var first error
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil && first == nil {
				first = err
			}
		}
		if p.MemProfile != "" {
			f, err := os.Create(p.MemProfile)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("creating heap profile: %w", err)
				}
				return first
			}
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("writing heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// Flags bundles the observability flags of the checking CLIs.
type Flags struct {
	// Progress is the live-progress interval (0 = off).
	Progress time.Duration
	// Report is the run-report output path ("" = none).
	Report string
	// StallTimeout arms the stall watchdog: a build making zero progress
	// for this long is aborted to an UNKNOWN verdict (0 = off).
	StallTimeout time.Duration
	*ProfileFlags
}

// AddFlags registers -progress, -report, -stall-timeout, -cpuprofile, and
// -memprofile.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{ProfileFlags: AddProfileFlags(fs)}
	fs.DurationVar(&f.Progress, "progress", 0,
		"print a live progress line to stderr at this interval (e.g. 1s; 0 = off)")
	fs.StringVar(&f.Report, "report", "",
		"write a machine-readable JSON run report to this file")
	fs.DurationVar(&f.StallTimeout, "stall-timeout", 0,
		"abort to UNKNOWN when no exploration progress happens for this long (e.g. 30s; 0 = off)")
	return f
}

// Enabled reports whether the flags call for a recorder.
func (f *Flags) Enabled() bool {
	return f.Progress > 0 || f.Report != "" || f.StallTimeout > 0
}
