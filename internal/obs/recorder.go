// Package obs is the zero-dependency observability layer of the checker:
// phase spans, a flight recorder, live progress, machine-readable run
// reports, and profiling hooks.
//
// Mature explicit-state checkers win adoption by explaining their runs —
// coverage, progress, diagnostics — not just by printing a verdict. This
// package makes every run of the engine explainable after the fact:
//
//   - A Recorder collects a tree of phase Spans (graph builds, monitor
//     products, safety/liveness/while-plus checks, per-hypothesis proof
//     obligations), each carrying the engine.RunStats delta of its phase.
//   - A fixed-size flight-recorder ring keeps the most recent engine events
//     (frontier level barriers, budget warnings at 80%/95%, SCC milestones)
//     so an exhausted or panicked run is diagnosable from its report.
//   - An opt-in progress ticker prints throughput, frontier depth/width,
//     worker occupancy, and budget headroom to stderr while a run is live.
//   - Finish serializes everything into a versioned JSON report consumed by
//     scripts/bench.sh and CI.
//
// The Recorder implements engine.Observer and attaches to an engine.Meter,
// which every layer of the checker already threads; no additional plumbing
// is needed. All methods are nil-safe and the layer is allocation-light: a
// disabled (absent) recorder costs one pointer load and branch at each
// callback site, and an enabled one allocates only at phase boundaries and
// level barriers, never per state.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"opentla/internal/engine"
	"opentla/internal/metrics"
	"opentla/internal/trace"
)

// ringSize is the flight-recorder capacity: enough to hold the full level
// history of any instance the engine can explore in minutes, small enough
// that the ring never matters for memory.
const ringSize = 256

// Event is one flight-recorder entry.
type Event struct {
	// T is the event time relative to the recorder's start.
	T time.Duration
	// Kind is a short stable tag: "level", "budget", "budget-exhausted",
	// "scc", "unknown-verdict", or a graph-cache outcome ("cache-hit",
	// "cache-miss", "cache-corrupt", "checkpoint-saved", "resume").
	Kind string
	// Msg is the human-readable payload.
	Msg string
}

// span is one node of the phase tree.
type span struct {
	name       string
	start, end time.Time
	statsStart engine.RunStats
	statsEnd   engine.RunStats
	open       bool
	children   []*span
}

// Recorder collects spans, events, and progress gauges for one run. Create
// one with New; a nil *Recorder is valid and inert, so call sites never
// need to guard.
//
// Concurrency contract: spans are opened and closed by the single goroutine
// driving the check (phases are sequential); ObserveEvent and ObserveLevel
// are safe for concurrent use from exploration workers.
type Recorder struct {
	meter *engine.Meter
	start time.Time
	now   func() time.Time // injectable clock, for deterministic tests

	mu        sync.Mutex
	root      *span
	stack     []*span // open spans, root first
	ring      [ringSize]Event
	ringNext  int
	ringCount int
	exhausted string                // span path when the budget latched
	cache     CacheStats            // graph-cache outcome counters, fed by ObserveEvent
	reduction engine.ReductionStats // summed across explorations, fed by ObserveReduction

	// Performance-telemetry sinks, attached before the run starts. The
	// exploration layers reach them through trace.FromMeter /
	// metrics.FromMeter, which type-assert this recorder via the meter's
	// observer — so the engine package never imports either.
	tracer  *trace.Tracer
	metrics *metrics.Registry

	// Progress gauges, written at frontier level barriers.
	gaugeOp      atomic.Value // string: the exploration op label
	gaugeLevel   atomic.Int64
	gaugeWidth   atomic.Int64
	gaugeWorkers atomic.Int64

	progressStop func()
}

// New creates a recorder governing the given meter and installs itself as
// the meter's observer. The root span opens immediately and closes when
// Finish is called.
func New(m *engine.Meter) *Recorder {
	r := &Recorder{meter: m, now: time.Now}
	r.start = r.now()
	r.root = &span{name: "run", start: r.start, statsStart: m.Stats(), open: true}
	r.stack = []*span{r.root}
	m.SetObserver(r)
	return r
}

// FromMeter returns the Recorder installed as the meter's observer, or nil.
func FromMeter(m *engine.Meter) *Recorder {
	if m == nil {
		return nil
	}
	r, _ := m.Observer().(*Recorder)
	return r
}

// SetTracer attaches a perf tracer; phase spans closed after this call also
// land on the tracer's "phases" track. Call before the run starts. Nil-safe.
func (r *Recorder) SetTracer(t *trace.Tracer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.tracer = t
	r.mu.Unlock()
}

// Tracer returns the attached perf tracer, or nil. It is the optional
// observer interface trace.FromMeter discovers.
func (r *Recorder) Tracer() *trace.Tracer {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tracer
}

// SetMetrics attaches a metric registry; Finish snapshots it into the
// report's metrics section. Call before the run starts. Nil-safe.
func (r *Recorder) SetMetrics(reg *metrics.Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.metrics = reg
	r.mu.Unlock()
}

// Metrics returns the attached metric registry, or nil. It is the optional
// observer interface metrics.FromMeter discovers.
func (r *Recorder) Metrics() *metrics.Registry {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.metrics
}

var noop = func() {}

// SpanFromMeter opens a span on the meter's recorder, if any, and returns
// the closing func. With no recorder attached it returns a no-op, so
// instrumented call sites cost one interface load on the disabled path.
func SpanFromMeter(m *engine.Meter, name string) func() {
	if r := FromMeter(m); r != nil {
		return r.Span(name)
	}
	return noop
}

// Span opens a named phase span nested in the innermost open span and
// returns the func that closes it (idempotent). The span records the meter
// stats at open and close, so its report entry carries the phase's
// RunStats delta. Nil-safe.
func (r *Recorder) Span(name string) func() {
	if r == nil {
		return noop
	}
	r.mu.Lock()
	s := &span{name: name, start: r.now(), statsStart: r.meter.Stats(), open: true}
	parent := r.stack[len(r.stack)-1]
	parent.children = append(parent.children, s)
	r.stack = append(r.stack, s)
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			s.end = r.now()
			s.statsEnd = r.meter.Stats()
			s.open = false
			// Pop s and anything a panicking phase left open above it.
			for i := len(r.stack) - 1; i > 0; i-- {
				if r.stack[i] == s {
					r.stack = r.stack[:i]
					break
				}
			}
			// Mirror the closed phase onto the perf timeline, so the trace
			// shows build/check phases above the per-worker tracks.
			r.tracer.Phase(s.name, s.start, s.end)
		})
	}
}

// pushEvent appends to the ring. Caller holds r.mu.
func (r *Recorder) pushEvent(e Event) {
	r.ring[r.ringNext] = e
	r.ringNext = (r.ringNext + 1) % ringSize
	if r.ringCount < ringSize {
		r.ringCount++
	}
}

// pathLocked renders the open-span path ("run/theorem:X/H2b/build:full-lhs").
// Caller holds r.mu.
func (r *Recorder) pathLocked() string {
	path := ""
	for i, s := range r.stack {
		if i > 0 {
			path += "/"
		}
		path += s.name
	}
	return path
}

// ObserveEvent implements engine.Observer: it records the event in the
// flight-recorder ring. The first budget-exhausted event additionally pins
// the open-span path, naming the phase that exhausted the budget, and
// graph-cache outcomes bump the report's cache counters.
func (r *Recorder) ObserveEvent(kind, msg string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.pushEvent(Event{T: r.now().Sub(r.start), Kind: kind, Msg: msg})
	if kind == "budget-exhausted" && r.exhausted == "" {
		r.exhausted = r.pathLocked()
	}
	switch kind {
	case "cache-hit":
		r.cache.Hits++
	case "cache-miss":
		r.cache.Misses++
	case "cache-corrupt":
		r.cache.Corrupt++
	case "checkpoint-saved":
		r.cache.CheckpointsSaved++
	case "resume":
		r.cache.Resumes++
	case "cache-quarantine":
		r.cache.Quarantined++
	case "cache-sweep":
		r.cache.TempSwept++
	case "cache-gc":
		r.cache.GCRemoved++
	case "cache-retry":
		r.cache.Retries++
	}
	r.mu.Unlock()
}

// ObserveLevel implements engine.Observer: it updates the progress gauges
// and drops one flight-recorder entry per frontier level barrier.
func (r *Recorder) ObserveLevel(op string, level, width, workers, totalStates int) {
	if r == nil {
		return
	}
	r.gaugeOp.Store(op)
	r.gaugeLevel.Store(int64(level))
	r.gaugeWidth.Store(int64(width))
	r.gaugeWorkers.Store(int64(workers))
	r.mu.Lock()
	r.pushEvent(Event{
		T:    r.now().Sub(r.start),
		Kind: "level",
		Msg:  fmt.Sprintf("%s: level %d, width %d, %d workers, %d states total", op, level, width, workers, totalStates),
	})
	r.mu.Unlock()
}

// ObserveReduction implements engine.Observer: it sums per-exploration
// reduction statistics into the run totals and drops one flight-recorder
// entry describing what the reduction achieved.
func (r *Recorder) ObserveReduction(op string, s engine.ReductionStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.reduction.AmpleStates += s.AmpleStates
	r.reduction.FullStates += s.FullStates
	r.reduction.AmpleSuccs += s.AmpleSuccs
	r.reduction.FullSuccs += s.FullSuccs
	r.reduction.SymCollapsed += s.SymCollapsed
	r.pushEvent(Event{
		T:    r.now().Sub(r.start),
		Kind: "reduce",
		Msg: fmt.Sprintf("%s: %d ample / %d full expansions, %d sym-collapsed successors",
			op, s.AmpleStates, s.FullStates, s.SymCollapsed),
	})
	r.mu.Unlock()
}

// Reduction returns the reduction statistics accumulated so far.
func (r *Recorder) Reduction() engine.ReductionStats {
	if r == nil {
		return engine.ReductionStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reduction
}

// Events returns the flight-recorder contents, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, r.ringCount)
	start := r.ringNext - r.ringCount
	if start < 0 {
		start += ringSize
	}
	for i := 0; i < r.ringCount; i++ {
		out = append(out, r.ring[(start+i)%ringSize])
	}
	return out
}

// CacheStats returns the graph-cache outcome counters accumulated so far.
func (r *Recorder) CacheStats() CacheStats {
	if r == nil {
		return CacheStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cache
}

// ExhaustedPhase returns the open-span path at the moment the budget
// latched, or "" if the budget never exhausted.
func (r *Recorder) ExhaustedPhase() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.exhausted
}
