package obs

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"opentla/internal/engine"
	"opentla/internal/metrics"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// newFakeRecorder attaches a recorder to m and replaces its clock with a
// deterministic one advancing 10ms per reading, so span and event times in
// reports are reproducible.
func newFakeRecorder(m *engine.Meter) *Recorder {
	r := New(m)
	base := time.Unix(1700000000, 0)
	cur := base
	r.now = func() time.Time {
		cur = cur.Add(10 * time.Millisecond)
		return cur
	}
	r.start = base
	r.root.start = base
	r.root.statsStart = engine.RunStats{}
	return r
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Span("phase")() // must not panic
	r.ObserveEvent("budget", "msg")
	r.ObserveLevel("op", 1, 2, 3, 4)
	if got := r.Events(); got != nil {
		t.Errorf("nil recorder Events() = %v, want nil", got)
	}
	if got := r.ExhaustedPhase(); got != "" {
		t.Errorf("nil recorder ExhaustedPhase() = %q, want empty", got)
	}
	r.StartProgress(io.Discard, time.Second)()
	r.StopProgress()
	rep := r.Finish("tool", Config{}, engine.Holds, "")
	if rep == nil || rep.SchemaVersion != SchemaVersion || rep.Span != nil {
		t.Errorf("nil recorder Finish() = %+v, want minimal report without span tree", rep)
	}
}

func TestSpanFromMeterWithoutRecorder(t *testing.T) {
	m := engine.NoLimit()
	SpanFromMeter(m, "phase")() // no recorder attached: must be a no-op
	SpanFromMeter(nil, "phase")()
	if FromMeter(m) != nil {
		t.Error("FromMeter on bare meter should be nil")
	}
}

func TestSpanNestingAndStatsDeltas(t *testing.T) {
	m := engine.NoLimit()
	r := newFakeRecorder(m)

	endOuter := r.Span("outer")
	for i := 0; i < 3; i++ {
		if err := m.AddState(); err != nil {
			t.Fatal(err)
		}
	}
	endInner := r.Span("inner")
	for i := 0; i < 4; i++ {
		if err := m.AddState(); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.AddTransitions(9); err != nil {
		t.Fatal(err)
	}
	endInner()
	endOuter()
	endOuter() // close funcs are idempotent

	rep := r.Finish("t", Config{}, engine.Holds, "")
	if rep.Span.Name != "run" || len(rep.Span.Children) != 1 {
		t.Fatalf("unexpected span tree root: %+v", rep.Span)
	}
	outer := rep.Span.Children[0]
	if outer.Name != "outer" || outer.Stats.States != 7 || outer.Stats.Transitions != 9 {
		t.Errorf("outer span = %+v, want 7 states, 9 transitions", outer)
	}
	if len(outer.Children) != 1 {
		t.Fatalf("outer children = %d, want 1", len(outer.Children))
	}
	inner := outer.Children[0]
	if inner.Name != "inner" || inner.Stats.States != 4 || inner.Stats.Transitions != 9 {
		t.Errorf("inner span = %+v, want 4 states, 9 transitions", inner)
	}
	if rep.Stats.States != 7 {
		t.Errorf("top-level states = %d, want 7", rep.Stats.States)
	}
}

func TestSpanLeakRecovery(t *testing.T) {
	// Closing an outer span pops inner spans a panicking phase leaked open,
	// so later spans attach at the right depth.
	m := engine.NoLimit()
	r := newFakeRecorder(m)
	endOuter := r.Span("outer")
	r.Span("leaked") // never closed
	endOuter()
	r.Span("after")()
	rep := r.Finish("t", Config{}, engine.Holds, "")
	names := make([]string, 0, 2)
	for _, c := range rep.Span.Children {
		names = append(names, c.Name)
	}
	if fmt.Sprint(names) != "[outer after]" {
		t.Errorf("root children = %v, want [outer after]", names)
	}
	if leaked := rep.Span.Children[0].Children[0]; leaked.Name != "leaked" || !leaked.Open {
		t.Errorf("leaked span = %+v, want open child of outer", leaked)
	}
}

func TestRingWraparound(t *testing.T) {
	m := engine.NoLimit()
	r := newFakeRecorder(m)
	const total = ringSize + 50
	for i := 0; i < total; i++ {
		r.ObserveEvent("level", fmt.Sprintf("event %d", i))
	}
	events := r.Events()
	if len(events) != ringSize {
		t.Fatalf("ring holds %d events, want %d", len(events), ringSize)
	}
	if want := fmt.Sprintf("event %d", total-ringSize); events[0].Msg != want {
		t.Errorf("oldest event = %q, want %q", events[0].Msg, want)
	}
	if want := fmt.Sprintf("event %d", total-1); events[len(events)-1].Msg != want {
		t.Errorf("newest event = %q, want %q", events[len(events)-1].Msg, want)
	}
}

func TestExhaustedPhaseCapture(t *testing.T) {
	m := engine.Budget{MaxStates: 5}.Meter()
	r := newFakeRecorder(m)
	end1 := r.Span("theorem:demo")
	end2 := r.Span("build:closure")
	var lastErr error
	for i := 0; i < 10 && lastErr == nil; i++ {
		lastErr = m.AddState()
	}
	if lastErr == nil {
		t.Fatal("budget should have exhausted")
	}
	end2()
	end1()
	if got, want := r.ExhaustedPhase(), "run/theorem:demo/build:closure"; got != want {
		t.Errorf("ExhaustedPhase() = %q, want %q", got, want)
	}
	rep := r.Finish("t", Config{MaxStates: 5}, engine.Unknown, lastErr.Error())
	if rep.ExhaustedPhase != "run/theorem:demo/build:closure" {
		t.Errorf("report exhausted_phase = %q", rep.ExhaustedPhase)
	}
	if len(rep.Events) == 0 {
		t.Error("UNKNOWN report should carry the flight-recorder tail")
	}
	var sawWarn, sawExhausted bool
	for _, e := range rep.Events {
		sawWarn = sawWarn || e.Kind == "budget"
		sawExhausted = sawExhausted || e.Kind == "budget-exhausted"
	}
	if !sawWarn || !sawExhausted {
		t.Errorf("events missing budget warnings or exhaustion: %+v", rep.Events)
	}

	// A HOLDS report keeps the flight recorder out of the JSON.
	if rep2 := r.Finish("t", Config{}, engine.Holds, ""); len(rep2.Events) != 0 {
		t.Errorf("HOLDS report should not carry events, got %d", len(rep2.Events))
	}
}

func TestCacheStatsFromEvents(t *testing.T) {
	m := engine.NoLimit()
	r := newFakeRecorder(m)
	// Cache events arrive through the ordinary Observer seam (ts emits them
	// via Meter.Note); the recorder aggregates them into the report section.
	m.Note("cache-miss", "no cached graph")
	m.Note("checkpoint-saved", "checkpoint at level 3")
	m.Note("resume", "resuming from level 3")
	m.Note("cache-hit", "reusing cached graph")
	m.Note("cache-hit", "reusing cached product")
	m.Note("cache-corrupt", "cache entry unusable")
	want := CacheStats{Hits: 2, Misses: 1, Corrupt: 1, CheckpointsSaved: 1, Resumes: 1}
	if got := r.CacheStats(); got != want {
		t.Errorf("CacheStats() = %+v, want %+v", got, want)
	}
	rep := r.Finish("t", Config{}, engine.Holds, "")
	if rep.Cache == nil || *rep.Cache != want {
		t.Errorf("report cache = %+v, want %+v", rep.Cache, want)
	}

	// A run that never touched a cache omits the section entirely.
	r2 := newFakeRecorder(engine.NoLimit())
	if rep2 := r2.Finish("t", Config{}, engine.Holds, ""); rep2.Cache != nil {
		t.Errorf("cache-free run should omit the cache section, got %+v", rep2.Cache)
	}
	var nilRec *Recorder
	if got := nilRec.CacheStats(); got != (CacheStats{}) {
		t.Errorf("nil recorder CacheStats() = %+v", got)
	}
}

func TestObserveLevelUpdatesGauges(t *testing.T) {
	m := engine.NoLimit()
	r := newFakeRecorder(m)
	r.ObserveLevel("ts.Build(demo)", 7, 42, 4, 1000)
	if r.gaugeLevel.Load() != 7 || r.gaugeWidth.Load() != 42 || r.gaugeWorkers.Load() != 4 {
		t.Errorf("gauges = %d/%d/%d, want 7/42/4",
			r.gaugeLevel.Load(), r.gaugeWidth.Load(), r.gaugeWorkers.Load())
	}
	events := r.Events()
	if len(events) != 1 || events[0].Kind != "level" ||
		!strings.Contains(events[0].Msg, "level 7, width 42, 4 workers, 1000 states total") {
		t.Errorf("level event = %+v", events)
	}
}

func TestProgressLine(t *testing.T) {
	m := engine.Budget{MaxStates: 100}.Meter()
	r := newFakeRecorder(m)
	for i := 0; i < 45; i++ {
		if err := m.AddState(); err != nil {
			t.Fatal(err)
		}
	}
	r.ObserveLevel("ts.Build(demo)", 3, 15, 2, 45)
	var sb strings.Builder
	r.progressLine(&sb, 0, time.Now().Add(-time.Second))
	line := sb.String()
	for _, want := range []string{
		"progress: 45 states", "depth 3", "width 15", "workers 2",
		"in ts.Build(demo)", "budget used: states 45%",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
}

func TestHeadroom(t *testing.T) {
	tests := []struct {
		name string
		b    engine.Budget
		st   engine.RunStats
		want string
	}{
		{"unlimited", engine.Budget{}, engine.RunStats{States: 5}, ""},
		{"states only", engine.Budget{MaxStates: 100}, engine.RunStats{States: 45}, "states 45%"},
		{
			"all dimensions",
			engine.Budget{MaxStates: 100, MaxTransitions: 1000, Timeout: 10 * time.Second},
			engine.RunStats{States: 45, Transitions: 120, Elapsed: 3 * time.Second},
			"states 45%, transitions 12%, time 30%",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := headroom(tt.b, tt.st); got != tt.want {
				t.Errorf("headroom() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestStartProgressWritesAndStops(t *testing.T) {
	m := engine.NoLimit()
	r := New(m)
	var mu syncWriter
	stop := r.StartProgress(&mu, 5*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for mu.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	r.StopProgress()
	if mu.Len() == 0 {
		t.Error("progress ticker wrote nothing")
	}
	if !strings.Contains(mu.String(), "progress: ") {
		t.Errorf("progress output %q missing prefix", mu.String())
	}
}

// syncWriter is a mutex-guarded string buffer: the ticker goroutine writes
// while the test polls.
type syncWriter struct {
	mu sync.Mutex
	sb strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Write(p)
}

func (w *syncWriter) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.Len()
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sb.String()
}

// goldenReport builds a deterministic report: fake clock, scripted meter
// activity, one exhaustion inside a nested span.
func goldenReport(t *testing.T) *Report {
	t.Helper()
	m := engine.Budget{MaxStates: 10}.Meter()
	r := newFakeRecorder(m)
	endTheorem := r.Span("theorem:demo")
	endBuild := r.Span("build:demo/closure")
	var lastErr error
	for i := 0; i < 12 && lastErr == nil; i++ {
		lastErr = m.AddState()
	}
	if lastErr == nil {
		t.Fatal("budget should have exhausted")
	}
	if err := m.AddTransitions(17); err == nil {
		t.Fatal("meter should stay exhausted")
	}
	m.NoteFrontier(6)
	r.ObserveLevel("ts.Build(demo/closure)", 0, 6, 2, 6)
	r.ObserveReduction("ts.Build(demo/closure)", engine.ReductionStats{
		AmpleStates: 4, FullStates: 2, AmpleSuccs: 6, FullSuccs: 9, SymCollapsed: 3,
	})
	// A deterministic telemetry registry, pinning the metrics section shape.
	reg := metrics.NewRegistry()
	reg.Counter("opentla_store_lock_acquisitions_total", "store shard-lock acquisitions").Add(12)
	reg.LabeledCounter("opentla_store_lock_contended_total", "contended shard-lock acquisitions", "shard", "3").Add(2)
	reg.Gauge("opentla_workers", "worker count of the last exploration").Set(2)
	reg.Histogram("opentla_barrier_wait_nanoseconds", "per-worker barrier wait", []int64{1000, 1000000}).Observe(4000)
	r.SetMetrics(reg)
	endBuild()
	endTheorem()
	rep := r.Finish("goldentest", Config{
		Model:     "demo",
		N:         1,
		K:         2,
		Workers:   2,
		MaxStates: 10,
		Reduce:    "por,sym",
	}, engine.Unknown, lastErr.Error())
	rep.Hypotheses = append(rep.Hypotheses, Hypothesis{Name: "H1: C(E) => E_1", Holds: true})
	rep.Vet = &VetReport{
		Mode: "strict", Errors: 1, Warnings: 0, Infos: 1,
		Diagnostics: []VetDiagnostic{
			{Code: "SV002", Severity: "error", Component: "QM1", Action: "Enq",
				Message: `action constrains the next-state value of input "i.val"`,
				Hint:    `only the environment may change "i.val"; make it an output or drop the constraint`},
			{Code: "SV034", Severity: "info", Component: "QM1", Action: "WF[0]",
				Message: "fairness subscript mixes inputs with owned variables; an input change alone satisfies the angle-action"},
		},
	}
	return rep
}

// TestGoldenReportSchema pins the run-report JSON shape. Timestamps that
// depend on the wall clock are normalized; span and event times come from
// the injected test clock and are exact.
func TestGoldenReportSchema(t *testing.T) {
	rep := goldenReport(t)
	rep.Normalize()
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(data) != string(want) {
		t.Errorf("report differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, data, want)
	}
}

// TestReportRoundTrip checks that a report survives marshal → unmarshal →
// marshal byte-identically, so downstream tooling can rewrite reports.
func TestReportRoundTrip(t *testing.T) {
	rep := goldenReport(t)
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := back.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Errorf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", data, data2)
	}
	if back.SchemaVersion != SchemaVersion || back.Verdict != "UNKNOWN" ||
		back.ExhaustedPhase == "" || back.Span == nil {
		t.Errorf("round-tripped report lost fields: %+v", back)
	}
}
