package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"opentla/internal/engine"
)

// StartProgress starts a goroutine printing one status line to w every
// interval — throughput, frontier depth/width, worker occupancy, and
// budget headroom — and returns the (idempotent) stop func. Nil recorder
// or non-positive interval yields a no-op. The ticker reads only atomic
// gauges and meter counters, so it never perturbs the exploration.
func (r *Recorder) StartProgress(w io.Writer, interval time.Duration) func() {
	if r == nil || interval <= 0 {
		return noop
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		lastStates := r.meter.Stats().States
		lastT := time.Now()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				lastStates, lastT = r.progressLine(w, lastStates, lastT)
			}
		}
	}()
	var once sync.Once
	stopFn := func() {
		once.Do(func() {
			close(stop)
			wg.Wait()
		})
	}
	r.mu.Lock()
	r.progressStop = stopFn
	r.mu.Unlock()
	return stopFn
}

// StopProgress stops the progress ticker started by StartProgress, if any.
func (r *Recorder) StopProgress() {
	if r == nil {
		return
	}
	r.mu.Lock()
	stop := r.progressStop
	r.mu.Unlock()
	if stop != nil {
		stop()
	}
}

// progressLine prints one status line and returns the new rate baseline.
func (r *Recorder) progressLine(w io.Writer, lastStates int, lastT time.Time) (int, time.Time) {
	st := r.meter.Stats()
	now := time.Now()
	rate := 0.0
	if dt := now.Sub(lastT).Seconds(); dt > 0 {
		rate = float64(st.States-lastStates) / dt
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "progress: %d states (%.0f/s), %d transitions, depth %d, width %d, workers %d",
		st.States, rate, st.Transitions, r.gaugeLevel.Load(), r.gaugeWidth.Load(), r.gaugeWorkers.Load())
	if op, _ := r.gaugeOp.Load().(string); op != "" {
		fmt.Fprintf(&sb, ", in %s", op)
	}
	if head := headroom(r.meter.Budget(), st); head != "" {
		fmt.Fprintf(&sb, ", budget used: %s", head)
	}
	sb.WriteByte('\n')
	io.WriteString(w, sb.String())
	return st.States, now
}

// headroom renders the used fraction of every bounded budget dimension
// ("states 45%, time 30%"), or "" for an unlimited budget.
func headroom(b engine.Budget, st engine.RunStats) string {
	var parts []string
	pct := func(used, max float64) string { return fmt.Sprintf("%.0f%%", 100*used/max) }
	if b.MaxStates > 0 {
		parts = append(parts, "states "+pct(float64(st.States), float64(b.MaxStates)))
	}
	if b.MaxTransitions > 0 {
		parts = append(parts, "transitions "+pct(float64(st.Transitions), float64(b.MaxTransitions)))
	}
	if b.Timeout > 0 {
		parts = append(parts, "time "+pct(float64(st.Elapsed), float64(b.Timeout)))
	}
	return strings.Join(parts, ", ")
}
