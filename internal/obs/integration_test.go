package obs_test

import (
	"strings"
	"testing"

	"opentla/internal/circular"
	"opentla/internal/engine"
	"opentla/internal/obs"
)

// sumExploration adds up the states/transitions deltas of every build: and
// product: span. All state creation happens in graph exploration, which runs
// only inside those spans, so the sum must account for the whole run.
func sumExploration(s *obs.Span) (states, transitions int) {
	if strings.HasPrefix(s.Name, "build:") || strings.HasPrefix(s.Name, "product:") {
		states += s.Stats.States
		transitions += s.Stats.Transitions
	}
	for _, c := range s.Children {
		ds, dt := sumExploration(c)
		states += ds
		transitions += dt
	}
	return states, transitions
}

// TestTheoremSpanTreeAccountsForStats runs a real Composition Theorem check
// under a recorder and checks the acceptance property of the span tree: the
// per-phase exploration deltas sum to the top-level RunStats.
func TestTheoremSpanTreeAccountsForStats(t *testing.T) {
	m := engine.NoLimit()
	rec := obs.New(m)
	th := circular.SafetyTheorem()
	report, err := th.CheckWith(m)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != engine.Holds {
		t.Fatalf("circular safety theorem verdict = %v, want Holds", report.Verdict)
	}
	doc := rec.Finish("test", obs.Config{Model: "circular"}, report.Verdict, "")
	if doc.Span == nil || doc.Span.Name != "run" {
		t.Fatalf("missing root span: %+v", doc.Span)
	}
	if len(doc.Span.Children) != 1 || !strings.HasPrefix(doc.Span.Children[0].Name, "theorem:") {
		t.Fatalf("root children = %+v, want one theorem: span", doc.Span.Children)
	}
	// The theorem span must contain the per-hypothesis grouping spans.
	var hyps []string
	for _, c := range doc.Span.Children[0].Children {
		hyps = append(hyps, c.Name)
	}
	for _, want := range []string{"H1", "H2b"} {
		found := false
		for _, h := range hyps {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Errorf("theorem span children %v missing %q", hyps, want)
		}
	}
	states, transitions := sumExploration(doc.Span)
	if states != doc.Stats.States || states == 0 {
		t.Errorf("build/product span states sum to %d, top-level stats say %d", states, doc.Stats.States)
	}
	if transitions != doc.Stats.Transitions {
		t.Errorf("build/product span transitions sum to %d, top-level stats say %d", transitions, doc.Stats.Transitions)
	}
	if doc.ExhaustedPhase != "" {
		t.Errorf("unexhausted run has exhausted_phase %q", doc.ExhaustedPhase)
	}
}

// TestTheoremBudgetExhaustionNamesPhase exhausts a tiny state budget inside
// a real check and verifies the report names the phase that did it.
func TestTheoremBudgetExhaustionNamesPhase(t *testing.T) {
	m := engine.Budget{MaxStates: 5}.Meter()
	rec := obs.New(m)
	th := circular.SafetyTheorem()
	report, err := th.CheckWith(m)
	if err != nil {
		t.Fatal(err)
	}
	if report.Verdict != engine.Unknown {
		t.Fatalf("verdict = %v, want Unknown under a 5-state budget", report.Verdict)
	}
	doc := rec.Finish("test", obs.Config{MaxStates: 5}, report.Verdict, report.Unknown)
	if doc.ExhaustedPhase == "" || !strings.Contains(doc.ExhaustedPhase, "build:") {
		t.Errorf("exhausted_phase = %q, want a path through a build: span", doc.ExhaustedPhase)
	}
	if len(doc.Events) == 0 {
		t.Error("UNKNOWN report should include flight-recorder events")
	}
	last := doc.Events[len(doc.Events)-1]
	if last.Kind != "budget-exhausted" && last.Kind != "unknown-verdict" {
		t.Errorf("last event kind = %q, want exhaustion-related", last.Kind)
	}
}
