package obs

import (
	"fmt"
	"sync"
	"time"
)

// StartWatchdog starts a goroutine watching the meter's heartbeat — the
// monotone counter every cooperative exploration call advances — and returns
// the (idempotent) stop func. If the heartbeat stands still for timeout, the
// watchdog records a "stall" event and aborts the meter, so a wedged build
// unwinds at its next cooperative call and degrades to an UNKNOWN verdict
// whose report pins the stalled phase in exhausted_phase, instead of hanging
// the process forever. Nil recorder or non-positive timeout yields a no-op.
//
// The watchdog distinguishes wedged from slow: any tick, state, transition,
// or SCC resets the window, so only a build making literally zero progress
// for the full timeout is aborted. Sampling reads two atomic counters a few
// times per window; it never perturbs the exploration.
func (r *Recorder) StartWatchdog(timeout time.Duration) func() {
	if r == nil || timeout <= 0 {
		return noop
	}
	// Sample a few times per window so a stall is caught within ~1.25x the
	// configured timeout in the worst case.
	interval := timeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		last := r.meter.Heartbeat()
		lastMove := r.now()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if r.meter.Exhausted() {
					// The run is already unwinding; nothing left to watch.
					return
				}
				if hb := r.meter.Heartbeat(); hb != last {
					last = hb
					lastMove = r.now()
					continue
				}
				if idle := r.now().Sub(lastMove); idle >= timeout {
					reason := fmt.Sprintf("stall watchdog: no progress for %v (heartbeat stuck at %d)", idle.Round(time.Millisecond), last)
					r.ObserveEvent("stall", reason)
					r.meter.Abort(reason)
					return
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(stop)
			wg.Wait()
		})
	}
}
