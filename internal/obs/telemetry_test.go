package obs

import (
	"bytes"
	"flag"
	"strings"
	"testing"
	"time"

	"opentla/internal/engine"
	"opentla/internal/metrics"
	"opentla/internal/trace"
)

// TestFlagsValidate pins the -progress-interval contract: positive passes,
// zero and negative are rejected.
func TestFlagsValidate(t *testing.T) {
	cases := []struct {
		interval time.Duration
		ok       bool
	}{
		{time.Second, true},
		{time.Millisecond, true},
		{0, false},
		{-time.Second, false},
	}
	for _, tc := range cases {
		f := &Flags{ProgressInterval: tc.interval}
		err := f.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("Validate with interval %v: err=%v, want ok=%v", tc.interval, err, tc.ok)
		}
	}
}

func TestFlagsEnabledIncludesTelemetry(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Flags
		want bool
	}{
		{"off", Flags{ProgressInterval: time.Second}, false},
		{"progress", Flags{Progress: true, ProgressInterval: time.Second}, true},
		{"trace", Flags{Trace: "t.json", ProgressInterval: time.Second}, true},
		{"metrics", Flags{MetricsOut: "m.prom", ProgressInterval: time.Second}, true},
	} {
		if got := tc.f.Enabled(); got != tc.want {
			t.Errorf("%s: Enabled()=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestProgressPeriod(t *testing.T) {
	f := Flags{Progress: false, ProgressInterval: 5 * time.Second}
	if f.ProgressPeriod() != 0 {
		t.Fatalf("disabled progress must yield period 0")
	}
	f.Progress = true
	if f.ProgressPeriod() != 5*time.Second {
		t.Fatalf("enabled progress must yield the configured interval")
	}
}

// TestAddFlagsDefaults checks the registered defaults: progress off,
// interval 1s, no trace/metrics outputs.
func TestAddFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if f.Progress || f.ProgressInterval != time.Second || f.Trace != "" || f.MetricsOut != "" {
		t.Fatalf("unexpected defaults: %+v", f)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

// TestTelemetryAttachment checks the Flags.Telemetry wiring: -trace attaches
// both sinks (a timeline without its counters is half a story),
// -metrics-out alone attaches only a registry, and the meter-side discovery
// hooks (trace.FromMeter / metrics.FromMeter) see exactly what was attached.
func TestTelemetryAttachment(t *testing.T) {
	m := engine.NoLimit()
	rec := New(m)
	f := &Flags{Trace: "out.json", ProgressInterval: time.Second}
	tr, reg := f.Telemetry(rec)
	if tr == nil || reg == nil {
		t.Fatalf("-trace must attach tracer and registry, got %v/%v", tr, reg)
	}
	if trace.FromMeter(m) != tr || metrics.FromMeter(m) != reg {
		t.Fatalf("FromMeter discovery must return the attached sinks")
	}

	m2 := engine.NoLimit()
	rec2 := New(m2)
	f2 := &Flags{MetricsOut: "m.prom", ProgressInterval: time.Second}
	tr2, reg2 := f2.Telemetry(rec2)
	if tr2 != nil || reg2 == nil {
		t.Fatalf("-metrics-out alone must attach only a registry, got %v/%v", tr2, reg2)
	}
	if trace.FromMeter(m2) != nil {
		t.Fatalf("no tracer was attached; FromMeter must return nil")
	}

	// No recorder: nothing to attach to.
	if tr3, reg3 := f.Telemetry(nil); tr3 != nil || reg3 != nil {
		t.Fatalf("nil recorder must yield nil sinks")
	}
}

// TestSpanEmitsPhaseSlice checks that closing a recorder span mirrors it
// onto the tracer's "phases" track.
func TestSpanEmitsPhaseSlice(t *testing.T) {
	m := engine.NoLimit()
	rec := New(m)
	tr := trace.New()
	rec.SetTracer(tr)
	end := rec.Span("build:demo")
	end()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"build:demo"`) || !strings.Contains(out, `"phases"`) {
		t.Fatalf("trace missing phase slice for closed span:\n%s", out)
	}
}

// TestFinishIncludesMetricsSection checks the schema-6 metrics section:
// present (and sorted) with a registry, absent without.
func TestFinishIncludesMetricsSection(t *testing.T) {
	m := engine.NoLimit()
	rec := New(m)
	reg := metrics.NewRegistry()
	reg.Counter("b_total", "").Add(2)
	reg.Counter("a_total", "").Add(1)
	rec.SetMetrics(reg)
	rep := rec.Finish("test", Config{}, engine.Holds, "")
	if rep.SchemaVersion != 7 {
		t.Fatalf("schema_version = %d, want 7", rep.SchemaVersion)
	}
	if len(rep.Metrics) != 2 || rep.Metrics[0].Name != "a_total" || rep.Metrics[1].Name != "b_total" {
		t.Fatalf("metrics section wrong: %+v", rep.Metrics)
	}

	m2 := engine.NoLimit()
	rep2 := New(m2).Finish("test", Config{}, engine.Holds, "")
	if rep2.Metrics != nil {
		t.Fatalf("metrics section must be absent without a registry")
	}
}
