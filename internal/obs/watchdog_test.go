package obs

import (
	"errors"
	"strings"
	"testing"
	"time"

	"opentla/internal/engine"
)

func TestWatchdogAbortsStalledRun(t *testing.T) {
	m := engine.NoLimit()
	rec := New(m)
	end := rec.Span("build:wedged")
	defer end()

	stop := rec.StartWatchdog(30 * time.Millisecond)
	defer stop()

	// The meter's heartbeat never moves: the watchdog must latch an abort.
	deadline := time.After(5 * time.Second)
	for !m.Exhausted() {
		select {
		case <-deadline:
			t.Fatal("watchdog never fired on a stalled meter")
		case <-time.After(5 * time.Millisecond):
		}
	}
	var be *engine.BudgetError
	if err := m.Err(); !errors.As(err, &be) || !strings.Contains(err.Error(), "stall watchdog") {
		t.Fatalf("latched error = %v, want a stall BudgetError", err)
	}
	// The exploration unwinds at its next cooperative call.
	if err := m.Tick(); err == nil {
		t.Error("Tick after abort must fail")
	}
	// The report pins the stalled phase and records the stall event.
	if got := rec.ExhaustedPhase(); got != "run/build:wedged" {
		t.Errorf("ExhaustedPhase = %q, want run/build:wedged", got)
	}
	found := false
	for _, e := range rec.Events() {
		if e.Kind == "stall" {
			found = true
		}
	}
	if !found {
		t.Error("no stall event in the flight recorder")
	}
}

func TestWatchdogToleratesSlowProgress(t *testing.T) {
	m := engine.NoLimit()
	rec := New(m)
	stop := rec.StartWatchdog(80 * time.Millisecond)
	defer stop()

	// Slow but steady: one cooperative call per 10ms keeps the heartbeat
	// moving, so the watchdog must never fire.
	for i := 0; i < 20; i++ {
		if err := m.Tick(); err != nil {
			t.Fatalf("tick %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if m.Exhausted() {
		t.Fatalf("watchdog aborted a progressing run: %v", m.Err())
	}
}

func TestWatchdogDisabled(t *testing.T) {
	m := engine.NoLimit()
	rec := New(m)
	stop := rec.StartWatchdog(0)
	stop() // no-op must be callable
	var nilRec *Recorder
	nilRec.StartWatchdog(time.Second)() // nil-safe
	if m.Exhausted() {
		t.Error("disabled watchdog aborted the meter")
	}
}

func TestWatchdogStandsDownAfterBudgetExhaustion(t *testing.T) {
	m := engine.Budget{MaxStates: 1}.Meter()
	rec := New(m)
	stop := rec.StartWatchdog(20 * time.Millisecond)
	defer stop()
	m.AddState()
	if err := m.AddState(); err == nil {
		t.Fatal("state budget must exhaust")
	}
	reason := m.Err().Error()
	time.Sleep(60 * time.Millisecond)
	if got := m.Err().Error(); got != reason {
		t.Errorf("watchdog overwrote the latched error: %q -> %q", reason, got)
	}
	if strings.Contains(m.Err().Error(), "stall") {
		t.Error("watchdog fired on an already-exhausted meter")
	}
}

func TestMeterAbortAndHeartbeat(t *testing.T) {
	m := engine.NoLimit()
	h0 := m.Heartbeat()
	m.Tick()
	m.AddState()
	m.AddTransitions(3)
	m.NoteSCC()
	if h1 := m.Heartbeat(); h1 <= h0 {
		t.Errorf("heartbeat did not advance: %d -> %d", h0, h1)
	}
	if err := m.Abort("test abort"); err == nil {
		t.Fatal("Abort must return the latched error")
	}
	var be *engine.BudgetError
	if !errors.As(m.Err(), &be) || be.Reason != "test abort" {
		t.Errorf("latched error = %v", m.Err())
	}
}
