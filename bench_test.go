// Benchmark harness: one benchmark per experiment of DESIGN.md §4,
// regenerating every figure and result of Abadi & Lamport, "Open Systems in
// TLA". Each benchmark reports model-checking throughput for its
// experiment; correctness of the regenerated result is asserted inside the
// loop (a benchmark that silently checked the wrong thing would be
// worthless).
package opentla_test

import (
	"fmt"
	"testing"

	"opentla/internal/ag"
	"opentla/internal/arbiter"
	"opentla/internal/check"
	"opentla/internal/circular"
	"opentla/internal/form"
	"opentla/internal/handshake"
	"opentla/internal/queue"
	"opentla/internal/serial"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/ts"
	"opentla/internal/value"
)

// BenchmarkE1_CircularSafety regenerates §1 example 1 / §5's trivial
// example: the Composition Theorem validates the circular safety
// composition.
func BenchmarkE1_CircularSafety(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := circular.SafetyTheorem().Check()
		if err != nil || !report.Valid {
			b.Fatalf("valid=%v err=%v", report != nil && report.Valid, err)
		}
	}
}

// BenchmarkE2_CircularLiveness regenerates §1 example 2: the liveness
// composition fails, with a fair stuttering counterexample found by the
// model checker.
func BenchmarkE2_CircularLiveness(b *testing.B) {
	sys := &ts.System{
		Name: "copy-processes",
		Components: []*spec.Component{
			circular.CopyProcess("Pc", "c", "d"),
			circular.CopyProcess("Pd", "d", "c"),
		},
		Domains: circular.Domains(),
	}
	for i := 0; i < b.N; i++ {
		g, err := sys.Build()
		if err != nil {
			b.Fatal(err)
		}
		res, err := check.Liveness(g, circular.EventuallyOne("c"), nil)
		if err != nil || res.Holds || res.Counterexample == nil {
			b.Fatalf("holds=%v err=%v", res != nil && res.Holds, err)
		}
	}
}

// BenchmarkE3_HandshakeTrace regenerates Figure 2: the two-phase handshake
// protocol trace.
func BenchmarkE3_HandshakeTrace(b *testing.B) {
	c := handshake.Chan("c")
	vals := []value.Value{value.Int(37), value.Int(4), value.Int(19)}
	for i := 0; i < b.N; i++ {
		tr, err := c.Trace(value.Int(0), vals)
		if err != nil || len(tr) != 7 {
			b.Fatalf("len=%d err=%v", len(tr), err)
		}
	}
}

// BenchmarkE4_MachineClosure regenerates the Proposition 1 hypothesis check
// (machine closure) for the queue guarantee.
func BenchmarkE4_MachineClosure(b *testing.B) {
	cfg := queue.Config{N: 1, Vals: 2}
	qm := queue.QM("QM", cfg.N, queue.In, queue.Out, "q", cfg.ValueDomain())
	for i := 0; i < b.N; i++ {
		res, err := ag.MachineClosure(qm, cfg.Domains(), 0)
		if err != nil || !res.Closed {
			b.Fatalf("closed=%v err=%v", res != nil && res.Closed, err)
		}
	}
}

// BenchmarkE6_PlusElimination compares the two routes for hypothesis 2a of
// the Composition Theorem on the Fig. 9 instance: the paper's Proposition
// 3+4 route versus the direct +v monitor product. This is the ablation for
// the paper's claim that Propositions 3 and 4 give "a better way of proving
// these hypotheses".
func BenchmarkE6_PlusElimination(b *testing.B) {
	cfg := queue.Config{N: 1, Vals: 2}
	b.Run("prop34-route", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			th := cfg.Fig9Theorem()
			report, err := th.CheckHyp2aPropositionsOnly()
			if err != nil || !report.Valid {
				b.Fatalf("valid=%v err=%v", report != nil && report.Valid, err)
			}
		}
	})
	b.Run("direct-monitor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			th := cfg.Fig9Theorem()
			report, err := th.CheckHyp2aDirectOnly()
			if err != nil || !report.Valid {
				b.Fatalf("valid=%v err=%v", report != nil && report.Valid, err)
			}
		}
	})
}

// BenchmarkE8_WhilePlusEquivalences regenerates the §3/§4.2 algebra of ⊳,
// →, ⊥ by exhaustive lasso enumeration.
func BenchmarkE8_WhilePlusEquivalences(b *testing.B) {
	domains := map[string][]value.Value{"e": value.Bits(), "m": value.Bits()}
	ctx := form.NewCtx(domains)
	e := form.AndF(form.Pred(form.Eq(form.Var("e"), form.IntC(0))), form.ActBoxVars(form.FalseE, "e"))
	m := form.AndF(form.Pred(form.Eq(form.Var("m"), form.IntC(0))), form.ActBoxVars(form.FalseE, "m"))
	wp := form.WhilePlus(e, m)
	both := form.AndF(form.Arrow(e, m), form.Orth(e, m))
	universe := check.AllStates([]string{"e", "m"}, domains)
	for i := 0; i < b.N; i++ {
		check.ForAllLassos(universe, 2, 2, func(l *state.Lasso) bool {
			a, err := wp.Eval(ctx, l)
			if err != nil {
				b.Fatal(err)
			}
			c, err := both.Eval(ctx, l)
			if err != nil {
				b.Fatal(err)
			}
			if a != c {
				b.Fatal("equivalence broken")
			}
			return true
		})
	}
}

// BenchmarkE10_CDQRefinement regenerates §A.4: CDQ ⇒ CQ^dbl under the
// refinement mapping, at several instance sizes (safety for all, the full
// check with fairness for the base size).
func BenchmarkE10_CDQRefinement(b *testing.B) {
	sizes := []queue.Config{{N: 1, Vals: 2}, {N: 1, Vals: 3}, {N: 2, Vals: 2}}
	for _, cfg := range sizes {
		cfg := cfg
		b.Run(fmt.Sprintf("safety/N=%d,K=%d", cfg.N, cfg.Vals), func(b *testing.B) {
			g, err := cfg.DoubleSystem(true).Build()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := check.SafetyUnder(g,
					cfg.DoubleQueueSpec().SafetyOnly().SafetyFormula(), queue.DoubleMapping())
				if err != nil || !res.Holds {
					b.Fatalf("holds=%v err=%v", res != nil && res.Holds, err)
				}
			}
		})
	}
	cfg := queue.Config{N: 1, Vals: 2}
	b.Run("full/N=1,K=2", func(b *testing.B) {
		g, err := cfg.DoubleSystem(true).Build()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := check.Component(g, cfg.DoubleQueueSpec(), queue.DoubleMapping())
			if err != nil || !res.Holds() {
				b.Fatalf("holds=%v err=%v", res != nil && res.Holds(), err)
			}
		}
	})
}

// BenchmarkE11_Fig9 regenerates the full Figure 9 proof: every hypothesis
// of the Composition Theorem for the open double queue.
func BenchmarkE11_Fig9(b *testing.B) {
	for _, cfg := range []queue.Config{{N: 1, Vals: 2}, {N: 1, Vals: 3}} {
		cfg := cfg
		b.Run(fmt.Sprintf("N=%d,K=%d", cfg.N, cfg.Vals), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				report, err := cfg.Fig9Theorem().Check()
				if err != nil || !report.Valid {
					b.Fatalf("valid=%v err=%v", report != nil && report.Valid, err)
				}
			}
		})
	}
}

// BenchmarkE12_Fig9WithoutG regenerates §A.5's negative result: without the
// interleaving assumption G the composition claim (3) is refuted.
func BenchmarkE12_Fig9WithoutG(b *testing.B) {
	cfg := queue.Config{N: 1, Vals: 2}
	for i := 0; i < b.N; i++ {
		th := cfg.Fig9Theorem()
		th.Pairs = th.Pairs[1:]
		report, err := th.Check()
		if err != nil || report.Valid {
			b.Fatalf("valid=%v err=%v", report != nil && report.Valid, err)
		}
	}
}

// BenchmarkE14_Corollary regenerates the Corollary: the fused double queue
// refines the (2N+1)-queue under the fixed environment assumption.
func BenchmarkE14_Corollary(b *testing.B) {
	cfg := queue.Config{N: 1, Vals: 2}
	for i := 0; i < b.N; i++ {
		report, err := cfg.CorollaryRefinement().Check()
		if err != nil || !report.Valid {
			b.Fatalf("valid=%v err=%v", report != nil && report.Valid, err)
		}
	}
}

// BenchmarkE15_CompositionalVsMonolithic is the scaling ablation: verifying
// the open composition via the Composition Theorem's hypotheses versus
// verifying the closed double-queue refinement monolithically.
func BenchmarkE15_CompositionalVsMonolithic(b *testing.B) {
	cfg := queue.Config{N: 1, Vals: 2}
	b.Run("compositional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			report, err := cfg.Fig9Theorem().Check()
			if err != nil || !report.Valid {
				b.Fatal(err)
			}
		}
	})
	b.Run("monolithic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g, err := cfg.DoubleSystem(true).Build()
			if err != nil {
				b.Fatal(err)
			}
			envRes, err := check.Safety(g, queue.QE("QEdbl", queue.In, queue.Out, cfg.ValueDomain()).SafetyFormula())
			if err != nil || !envRes.Holds {
				b.Fatal(err)
			}
			res, err := check.Component(g, cfg.DoubleQueueSpec(), queue.DoubleMapping())
			if err != nil || !res.Holds() {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE16_Arbiter regenerates the second-domain study: the circular
// arbiter/client composition (with strong fairness) validated by the
// Composition Theorem.
func BenchmarkE16_Arbiter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report, err := arbiter.Theorem().Check()
		if err != nil || !report.Valid {
			b.Fatalf("valid=%v err=%v", report != nil && report.Valid, err)
		}
	}
}

// BenchmarkE17_SerialRefinement regenerates the §2.3 interface-refinement
// study: the serial bit-channel system implements the wide-channel
// specification.
func BenchmarkE17_SerialRefinement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := serial.System(false).Build()
		if err != nil {
			b.Fatal(err)
		}
		res, err := check.Safety(g, serial.WideSpec().SafetyFormula())
		if err != nil || !res.Holds {
			b.Fatalf("holds=%v err=%v", res != nil && res.Holds, err)
		}
	}
}

// BenchmarkGraphBuild measures raw state-graph construction for the
// complete systems of Figures 6 and 8.
func BenchmarkGraphBuild(b *testing.B) {
	for _, cfg := range []queue.Config{{N: 1, Vals: 2}, {N: 2, Vals: 2}, {N: 1, Vals: 3}} {
		cfg := cfg
		b.Run(fmt.Sprintf("CQ/N=%d,K=%d", cfg.N, cfg.Vals), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cfg.SingleSystem().Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("CDQ/N=%d,K=%d", cfg.N, cfg.Vals), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cfg.DoubleSystem(true).Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuild_Parallel measures parallel frontier exploration of the
// closed double-queue system (Fig. 8) at several worker counts. The graph
// is identical at every setting; only wall time differs.
func BenchmarkBuild_Parallel(b *testing.B) {
	cfg := queue.Config{N: 1, Vals: 3}
	for _, workers := range []int{1, 2, 4, 0} {
		workers := workers
		name := fmt.Sprintf("CDQ/N=%d,K=%d/workers=%d", cfg.N, cfg.Vals, workers)
		if workers == 0 {
			name = fmt.Sprintf("CDQ/N=%d,K=%d/workers=GOMAXPROCS", cfg.N, cfg.Vals)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := cfg.DoubleSystem(true)
				sys.Workers = workers
				g, err := sys.Build()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(g.NumStates()), "states")
			}
		})
	}
}

// BenchmarkFig9_Parallel measures the full Fig. 9 Composition Theorem check
// with parallel exploration of every constructed state graph.
func BenchmarkFig9_Parallel(b *testing.B) {
	cfg := queue.Config{N: 1, Vals: 2}
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("N=%d,K=%d/workers=%d", cfg.N, cfg.Vals, workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				th := cfg.Fig9Theorem()
				th.Workers = workers
				report, err := th.Check()
				if err != nil || !report.Valid {
					b.Fatalf("valid=%v err=%v", report != nil && report.Valid, err)
				}
			}
		})
	}
}
