// Arbiter: the assumption/guarantee method on a mutual-exclusion arbiter —
// circular specifications (arbiter assumes clients, clients assume
// arbiter) composed with the Composition Theorem, plus the WF/SF
// separation: weak fairness on grants permits starvation, strong fairness
// does not.
//
// Run with: go run ./examples/arbiter
package main

import (
	"fmt"
	"log"

	"opentla/internal/arbiter"
	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/tracetab"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The circular composition.
	report, err := arbiter.Theorem().Check()
	if err != nil {
		return err
	}
	fmt.Print(report)

	// Direct checks on the closed system.
	g, err := arbiter.System().Build()
	if err != nil {
		return err
	}
	mutex, err := check.Invariant(g, arbiter.Mutex())
	if err != nil {
		return err
	}
	service, err := check.Liveness(g, form.LeadsTo(
		form.Eq(form.Var("r1"), form.IntC(1)),
		form.Eq(form.Var("g1"), form.IntC(1)),
	), nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nclosed system: mutual exclusion = %v, r1 ↝ g1 = %v\n",
		mutex.Holds, service.Holds)

	// Downgrade the arbiter's grant fairness to weak: starvation appears.
	weak := arbiter.Arbiter()
	for i := range weak.Fairness {
		weak.Fairness[i].Kind = form.Weak
	}
	sys := arbiter.System()
	sys.Components[0] = weak
	gw, err := sys.Build()
	if err != nil {
		return err
	}
	starved, err := check.Liveness(gw, form.LeadsTo(
		form.Eq(form.Var("r1"), form.IntC(1)),
		form.Eq(form.Var("g1"), form.IntC(1)),
	), nil)
	if err != nil {
		return err
	}
	fmt.Printf("with WF grants instead of SF: r1 ↝ g1 = %v (expected false)\n", starved.Holds)
	if starved.Counterexample != nil {
		fmt.Println("starvation run (client 2 monopolizes the resource):")
		fmt.Print(tracetab.LassoTable(starved.Counterexample, []string{"r1", "g1", "r2", "g2"}))
	}
	return nil
}
