// Quickstart: define two tiny open components with assumption/guarantee
// specifications, compose them with the Composition Theorem, and model-check
// one of them against its A/G spec directly.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"opentla/internal/ag"
	"opentla/internal/check"
	"opentla/internal/engine"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/ts"
	"opentla/internal/value"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	domains := map[string][]value.Value{"req": value.Bits(), "grant": value.Bits()}

	// A "server" that guarantees grant mirrors req — but only assuming the
	// client toggles req politely (never while a grant is pending).
	serve := form.And(
		form.Eq(form.PrimedVar("grant"), form.Var("req")),
		form.Unchanged("req"),
	)
	server := &spec.Component{
		Name:    "server",
		Inputs:  []string{"req"},
		Outputs: []string{"grant"},
		Init:    form.Eq(form.Var("grant"), form.IntC(0)),
		Actions: []spec.Action{{Name: "Serve", Def: serve}},
		Fairness: []spec.Fairness{
			{Kind: form.Weak, Action: serve},
		},
	}

	// The client's assumption, as a component owning req: it may raise req
	// only when grant agrees with req (i.e. the server has caught up).
	toggle := form.And(
		form.Eq(form.Var("grant"), form.Var("req")),
		form.Ne(form.PrimedVar("req"), form.Var("req")),
		form.Unchanged("grant"),
	)
	clientEnv := &spec.Component{
		Name:    "client-assumption",
		Inputs:  []string{"grant"},
		Outputs: []string{"req"},
		Init:    form.Eq(form.Var("req"), form.IntC(0)),
		Actions: []spec.Action{{Name: "Toggle", Def: toggle}},
	}

	// 1. Check the A/G spec directly: in the most general environment (req
	//    changes freely), the server still satisfies E ⊳ M where M is its
	//    own safety guarantee restricted to "grant only follows req".
	sys := &ts.System{
		Name:       "server-alone",
		Components: []*spec.Component{server},
		Domains:    domains,
	}
	g, err := sys.Build()
	if err != nil {
		return err
	}
	guarantee := &spec.Component{
		Name:    "M",
		Inputs:  []string{"req"},
		Outputs: []string{"grant"},
		Init:    form.Eq(form.Var("grant"), form.IntC(0)),
		Actions: []spec.Action{{Name: "Follow", Def: serve}},
	}
	res, err := check.WhilePlus(g, clientEnv, guarantee, nil)
	if err != nil {
		return err
	}
	fmt.Printf("server satisfies E -+> M: %v\n", res.Holds)

	// 2. Compose: client assumption met by a real client component, server
	//    guarantee met by the server — conclude the complete system keeps
	//    grant following req, via the Composition Theorem.
	conclusion := &spec.Component{
		Name:    "handover",
		Outputs: []string{"req", "grant"},
		Init: form.And(
			form.Eq(form.Var("req"), form.IntC(0)),
			form.Eq(form.Var("grant"), form.IntC(0)),
		),
		Actions: []spec.Action{
			{Name: "Toggle", Def: toggle},
			{Name: "Serve", Def: serve},
		},
	}
	th := &ag.Theorem{
		Name: "quickstart: client + server",
		Pairs: []ag.Pair{
			{Name: "server", Env: clientEnv, Sys: guarantee},
			{Name: "client", Env: guarantee.SafetyOnly(), Sys: clientEnv},
		},
		Concl:   ag.Conclusion{Sys: conclusion},
		Domains: domains,
	}
	// Checks are governed: a budget bounds the run and an exhausted budget
	// yields an UNKNOWN verdict with partial statistics instead of a hang.
	report, err := th.CheckWith(engine.Budget{MaxStates: 100_000}.Meter())
	if err != nil {
		return err
	}
	fmt.Print(report)
	fmt.Printf("verdict: %s (exit code %d); run stats: %s\n",
		report.Verdict, report.Verdict.ExitCode(), report.Stats)
	return nil
}
