// Circular composition: both introductory examples of §1 of the paper,
// end to end. The safety version composes (validated by the Composition
// Theorem); the liveness version does not (refuted by the all-stuttering
// behavior of the two copy processes).
//
// Run with: go run ./examples/circular
package main

import (
	"fmt"
	"log"

	"opentla/internal/check"
	"opentla/internal/circular"
	"opentla/internal/form"
	"opentla/internal/spec"
	"opentla/internal/tracetab"
	"opentla/internal/ts"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Example 1 — safety: (M⁰d ⊳ M⁰c) ∧ (M⁰c ⊳ M⁰d) ⇒ M⁰c ∧ M⁰d.
	fmt.Println("== Example 1 (safety): circular composition of 'always 0' ==")
	report, err := circular.SafetyTheorem().Check()
	if err != nil {
		return err
	}
	fmt.Print(report)

	// Example 2 — liveness: the analogous claim with ◇(c=1), ◇(d=1) fails.
	fmt.Println("\n== Example 2 (liveness): circular composition of 'eventually 1' ==")
	ctx := form.NewCtx(circular.Domains())
	f := circular.LivenessCompositionFormula()
	cex := circular.StutterCounterexample()
	holds, err := f.Eval(ctx, cex)
	if err != nil {
		return err
	}
	fmt.Printf("composition claim on the stuttering behavior: %v (expected false)\n", holds)
	fmt.Println("counterexample behavior:")
	fmt.Print(tracetab.LassoTable(cex, []string{"c", "d"}))

	// The counterexample is a genuine fair behavior of Πc ‖ Πd: the model
	// checker confirms ◇(c=1) fails for the real processes.
	sys := &ts.System{
		Name: "copy-processes",
		Components: []*spec.Component{
			circular.CopyProcess("Pc", "c", "d"),
			circular.CopyProcess("Pd", "d", "c"),
		},
		Domains: circular.Domains(),
	}
	g, err := sys.Build()
	if err != nil {
		return err
	}
	res, err := check.Liveness(g, circular.EventuallyOne("c"), nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nmodel checker: ◇(c=1) for Πc ‖ Πd holds = %v (expected false)\n", res.Holds)
	if res.Counterexample != nil {
		fmt.Println("fair counterexample found by the checker:")
		fmt.Print(tracetab.LassoTable(res.Counterexample, []string{"c", "d"}))
	}
	return nil
}
