// Double queue: Appendix A end to end — build the complete systems, check
// the refinement CDQ ⇒ CQ^dbl, replay the Figure 9 composition proof, and
// demonstrate both failure modes the paper discusses (dropping G, and
// overclaiming the capacity).
//
// Run with: go run ./examples/doublequeue [-n 1] [-k 2]
package main

import (
	"flag"
	"fmt"
	"log"

	"opentla/internal/check"
	"opentla/internal/queue"
	"opentla/internal/tracetab"
)

func main() {
	n := flag.Int("n", 1, "queue capacity N")
	k := flag.Int("k", 2, "value-domain size K")
	flag.Parse()
	if err := run(queue.Config{N: *n, Vals: *k}); err != nil {
		log.Fatal(err)
	}
}

func run(cfg queue.Config) error {
	// The refinement of §A.4.
	g, err := cfg.DoubleSystem(true).Build()
	if err != nil {
		return err
	}
	fmt.Printf("CDQ[N=%d,K=%d]: %d states, %d edges\n", cfg.N, cfg.Vals, g.NumStates(), g.NumEdges())
	res, err := check.Component(g, cfg.DoubleQueueSpec(), queue.DoubleMapping())
	if err != nil {
		return err
	}
	fmt.Printf("CDQ => QM^dbl under q = q2 o (z in flight) o q1: %v\n\n", res.Holds())

	// The composition theorem of §A.5 / Fig. 9.
	report, err := cfg.Fig9Theorem().Check()
	if err != nil {
		return err
	}
	fmt.Print(report)

	// Failure mode 1: drop G — the open composition claim (3) is invalid.
	noG := cfg.Fig9Theorem()
	noG.Pairs = noG.Pairs[1:]
	reportNoG, err := noG.Check()
	if err != nil {
		return err
	}
	fmt.Printf("\nwithout G: valid = %v (expected false — §A.5 formula (3))\n", reportNoG.Valid)

	// Failure mode 2: claim capacity 2N instead of 2N+1 — the in-flight
	// value on z overflows the abstract queue.
	small := queue.QM("QM2N", 2*cfg.N, queue.In, queue.Out, "q", cfg.ValueDomain())
	sres, err := check.SafetyUnder(g, small.SafetyOnly().SafetyFormula(), queue.DoubleMapping())
	if err != nil {
		return err
	}
	fmt.Printf("capacity-2N overclaim: holds = %v (expected false)\n", sres.Holds)
	if !sres.Holds {
		fmt.Println("overflow trace (last two columns are the violating step):")
		vars := append(append([]string{}, queue.In.Vars()...), queue.Mid.Vars()...)
		vars = append(vars, queue.Out.Vars()...)
		vars = append(vars, "q1", "q2")
		tail := sres.Trace
		if len(tail) > 6 {
			tail = tail[len(tail)-6:]
		}
		fmt.Print(tracetab.Table(tail, vars))
	}
	return nil
}
