// Handshake: the two-phase protocol of §A.1 — reproduce the Figure 2 trace,
// detect a protocol violation, and show why the queue needs its environment
// assumption (a hostile environment drives the checker to a violation).
//
// Run with: go run ./examples/handshake
package main

import (
	"fmt"
	"log"

	"opentla/internal/check"
	"opentla/internal/form"
	"opentla/internal/handshake"
	"opentla/internal/queue"
	"opentla/internal/spec"
	"opentla/internal/state"
	"opentla/internal/tracetab"
	"opentla/internal/ts"
	"opentla/internal/value"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Figure 2 reproduction.
	c := handshake.Chan("c")
	b, err := c.Trace(value.Int(0), []value.Value{value.Int(37), value.Int(4), value.Int(19)})
	if err != nil {
		return err
	}
	fmt.Println("Figure 2 — the two-phase handshake protocol:")
	fmt.Print(tracetab.Table(b, []string{c.Ack(), c.Sig(), c.Val()}))

	// A protocol violation is rejected by the Send action: sending while a
	// value is still pending.
	pending := b[1] // after the first send, before the ack
	bad := pending.WithAll(map[string]value.Value{
		c.Val(): value.Int(99),
		c.Sig(): value.Int(0),
	})
	ok, err := form.EvalBool(handshake.Send(form.IntC(99), c),
		state.Step{From: pending, To: bad}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nsend while pending allowed: %v (expected false)\n", ok)

	// §A.1's point: the queue is unimplementable against a hostile
	// environment. Drive the queue with a free environment (no QE) and
	// watch its guarantee fail — then add QE and watch it hold.
	cfg := queue.Config{N: 1, Vals: 2}
	qm := queue.QM("QM", cfg.N, queue.In, queue.Out, "q", cfg.ValueDomain())
	hostile := &ts.System{
		Name:       "queue-hostile",
		Components: []*spec.Component{qm},
		Domains:    cfg.Domains(),
	}
	gh, err := hostile.Build()
	if err != nil {
		return err
	}
	// In a hostile environment even the *complete protocol invariant* can
	// break: the environment may retract a pending value, so the queue's
	// outputs can desynchronise from the abstract FIFO discipline. We check
	// the queue's own guarantee formula: it still holds (the queue controls
	// its outputs) — but its *assumption* QE fails, showing the environment
	// really can misbehave.
	qe := queue.QE("QE", queue.In, queue.Out, cfg.ValueDomain())
	envRes, err := check.Safety(gh, qe.SafetyFormula())
	if err != nil {
		return err
	}
	fmt.Printf("hostile environment satisfies QE: %v (expected false)\n", envRes.Holds)

	polite := cfg.SingleSystem()
	gp, err := polite.Build()
	if err != nil {
		return err
	}
	envRes2, err := check.Safety(gp, qe.SafetyFormula())
	if err != nil {
		return err
	}
	inv, err := check.Invariant(gp, form.Le(form.Len(form.Var("q")), form.IntC(int64(cfg.N))))
	if err != nil {
		return err
	}
	fmt.Printf("with QE composed: assumption holds = %v, |q| <= N invariant holds = %v\n",
		envRes2.Holds, inv.Holds)
	return nil
}
