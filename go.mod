module opentla

go 1.22
