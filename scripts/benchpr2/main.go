// Command benchpr2 measures explicit-state exploration throughput on the
// Fig. 9 open-queue theorem and emits a JSON report (BENCH_PR2.json) so the
// performance trajectory of the checker has comparable data points across
// PRs.
//
// It reports, for the configured instance:
//
//   - raw graph construction of the closed double-queue system (states/sec)
//     at 1 worker and at -workers workers;
//   - the full Fig. 9 Composition Theorem check (wall time, cumulative
//     states, states/sec) at 1 worker and at -workers workers.
//
// Usage:
//
//	go run ./scripts/benchpr2 -n 1 -k 3 -workers 4 -out BENCH_PR2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"opentla/internal/engine"
	"opentla/internal/queue"
)

// Measurement is one timed exploration run.
type Measurement struct {
	Workers      int     `json:"workers"`
	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	PeakFrontier int     `json:"peak_frontier"`
	WallSeconds  float64 `json:"wall_seconds"`
	StatesPerSec float64 `json:"states_per_sec"`
}

// Report is the emitted BENCH_PR2.json document.
type Report struct {
	Instance     string        `json:"instance"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	BuildSeq     Measurement   `json:"build_sequential"`
	BuildPar     Measurement   `json:"build_parallel"`
	Fig9Seq      Measurement   `json:"fig9_theorem_sequential"`
	Fig9Par      Measurement   `json:"fig9_theorem_parallel"`
	Fig9Speedup  float64       `json:"fig9_speedup_vs_sequential"`
	BuildSpeedup float64       `json:"build_speedup_vs_sequential"`
	// PrePRBaseline records the pre-PR (string-keyed, single-goroutine)
	// states/sec on the same instance, measured on this machine before the
	// store/CSR/parallel-frontier refactor landed, for the ≥2x acceptance
	// comparison.
	PrePRBaseline      float64 `json:"pre_pr_fig9_states_per_sec_baseline"`
	SpeedupVsPrePR     float64 `json:"fig9_speedup_vs_pre_pr_baseline"`
	PrePRBaselineNote  string  `json:"pre_pr_baseline_note"`
	GeneratedAtSeconds int64   `json:"generated_at_unix"`
}

func measure(run func(m *engine.Meter) error) (Measurement, error) {
	m := engine.NoLimit()
	start := time.Now()
	if err := run(m); err != nil {
		return Measurement{}, err
	}
	wall := time.Since(start)
	st := m.Stats()
	out := Measurement{
		States:       st.States,
		Transitions:  st.Transitions,
		PeakFrontier: st.PeakFrontier,
		WallSeconds:  wall.Seconds(),
	}
	if wall > 0 {
		out.StatesPerSec = float64(st.States) / wall.Seconds()
	}
	return out, nil
}

func main() {
	var n, k, workers int
	var out, baselineNote string
	var baseline float64
	flag.IntVar(&n, "n", 1, "queue capacity N")
	flag.IntVar(&k, "k", 3, "value-domain size K")
	flag.IntVar(&workers, "workers", 4, "worker count for the parallel runs")
	flag.StringVar(&out, "out", "BENCH_PR2.json", "output JSON path")
	flag.Float64Var(&baseline, "pre-pr-baseline", 0,
		"pre-PR sequential Fig9 states/sec on this instance (0 = use the recorded default)")
	flag.StringVar(&baselineNote, "pre-pr-baseline-note", "", "provenance note for the baseline")
	flag.Parse()

	cfg := queue.Config{N: n, Vals: k}
	rep := Report{
		Instance:           fmt.Sprintf("Fig9 open-queue theorem, N=%d K=%d", n, k),
		GOMAXPROCS:         maxprocs(),
		GeneratedAtSeconds: time.Now().Unix(),
	}
	if baseline == 0 && n == 1 && k == 3 {
		// Measured on the pre-PR tree (commit 06838d0) on this machine:
		// Fig9Theorem().CheckWith over N=1,K=3 explored its states at this
		// cumulative rate with the string-keyed single-goroutine BFS.
		baseline = prePRDefaultBaseline
		baselineNote = prePRDefaultBaselineNote
	}
	rep.PrePRBaseline = baseline
	rep.PrePRBaselineNote = baselineNote

	fig9 := func(w int) func(m *engine.Meter) error {
		return func(m *engine.Meter) error {
			th := cfg.Fig9Theorem()
			th.Workers = w
			report, err := th.CheckWith(m)
			if err != nil {
				return err
			}
			if !report.Valid {
				return fmt.Errorf("Fig9 theorem unexpectedly invalid:\n%s", report)
			}
			return nil
		}
	}
	build := func(w int) func(m *engine.Meter) error {
		return func(m *engine.Meter) error {
			sys := cfg.DoubleSystem(true)
			sys.Workers = w
			_, err := sys.BuildWith(m)
			return err
		}
	}

	var err error
	if rep.BuildSeq, err = measure(build(1)); err != nil {
		fatal(err)
	}
	if rep.BuildPar, err = measure(build(workers)); err != nil {
		fatal(err)
	}
	if rep.Fig9Seq, err = measure(fig9(1)); err != nil {
		fatal(err)
	}
	if rep.Fig9Par, err = measure(fig9(workers)); err != nil {
		fatal(err)
	}
	rep.BuildSeq.Workers, rep.Fig9Seq.Workers = 1, 1
	rep.BuildPar.Workers, rep.Fig9Par.Workers = workers, workers
	if rep.Fig9Seq.StatesPerSec > 0 {
		rep.Fig9Speedup = rep.Fig9Par.StatesPerSec / rep.Fig9Seq.StatesPerSec
	}
	if rep.BuildSeq.StatesPerSec > 0 {
		rep.BuildSpeedup = rep.BuildPar.StatesPerSec / rep.BuildSeq.StatesPerSec
	}
	if rep.PrePRBaseline > 0 {
		rep.SpeedupVsPrePR = rep.Fig9Par.StatesPerSec / rep.PrePRBaseline
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s\nwrote %s\n", data, out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpr2:", err)
	os.Exit(2)
}

func maxprocs() int { return runtime.GOMAXPROCS(0) }

// prePRDefaultBaseline is the sequential Fig9 N=1,K=3 throughput measured on
// this machine immediately before the store/CSR/parallel-frontier refactor
// (commit 06838d0): 34092 distinct double-system states, 8.33s wall,
// string-keyed single-goroutine BFS.
const (
	prePRDefaultBaseline     = 4093.0
	prePRDefaultBaselineNote = "measured pre-refactor at commit 06838d0: Fig9 N=1 K=3, 34092 states in 8.33s, string-keyed sequential BFS"
)
