// Command benchpr4 measures checker throughput for the PR 4 persistent
// graph cache and emits BENCH_PR4.json, keeping the PR 2/3 numbers inline
// so the performance trajectory stays comparable across PRs.
//
// The headline PR 4 number is the warm-cache comparison: the Fig. 9 theorem
// is checked twice through agcheck against one -cache-dir, and the report
// records both wall clocks. The warm run must serve every graph from the
// cache (stats.states == 0) and reach the same verdict — the benchmark
// fails otherwise, so the number can never describe a partially-warm run.
//
// The recorder_overhead section carries the PR 3 acceptance gate forward:
// what does an *enabled* recorder cost on the double-queue graph build?
//
// Usage:
//
//	go run ./scripts/benchpr4 -n 1 -k 3 -workers 4 -out BENCH_PR4.json
//	go run ./scripts/benchpr4 -overhead-check            # CI gate: exit 1 if
//	                                                     # overhead > threshold
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"opentla/internal/engine"
	"opentla/internal/obs"
	"opentla/internal/queue"
)

// Measurement is one timed exploration run.
type Measurement struct {
	Workers      int     `json:"workers"`
	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	PeakFrontier int     `json:"peak_frontier"`
	WallSeconds  float64 `json:"wall_seconds"`
	StatesPerSec float64 `json:"states_per_sec"`
}

// CacheComparison is the PR 4 headline: the same agcheck invocation cold
// (populating the cache) and warm (served entirely from it).
type CacheComparison struct {
	ColdWallSeconds float64 `json:"cold_wall_seconds"`
	WarmWallSeconds float64 `json:"warm_wall_seconds"`
	// Speedup is cold/warm wall clock.
	Speedup float64 `json:"speedup"`
	// ColdStates is what the cold run explored; the warm run explored zero
	// (enforced, not merely reported).
	ColdStates float64 `json:"cold_states"`
	WarmHits   int     `json:"warm_cache_hits"`
	Verdict    string  `json:"verdict"`
}

// Overhead compares the graph build with and without an attached recorder.
type Overhead struct {
	Rounds              int     `json:"rounds"`
	DisabledBestSeconds float64 `json:"disabled_best_seconds"`
	EnabledBestSeconds  float64 `json:"enabled_best_seconds"`
	// OverheadPct is (enabled - disabled) / disabled * 100; negative values
	// are measurement noise.
	OverheadPct float64 `json:"overhead_pct"`
}

// Trajectory carries the prior PRs' numbers on the same instance and
// machine, so BENCH_PR4.json is self-contained for trend analysis.
type Trajectory struct {
	PrePR2Fig9StatesPerSec float64 `json:"pre_pr2_fig9_seq_states_per_sec"`
	PR2Fig9SeqStatesPerSec float64 `json:"pr2_fig9_seq_states_per_sec"`
	PR3Fig9SeqStatesPerSec float64 `json:"pr3_fig9_seq_states_per_sec"`
	Note                   string  `json:"note"`
}

// Report is the emitted BENCH_PR4.json document.
type Report struct {
	Instance   string      `json:"instance"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	BuildSeq   Measurement `json:"build_sequential"`
	BuildPar   Measurement `json:"build_parallel"`
	// The Fig. 9 numbers are parsed from agcheck -report run reports.
	Fig9Seq          Measurement     `json:"fig9_theorem_sequential"`
	Fig9Par          Measurement     `json:"fig9_theorem_parallel"`
	Fig9Speedup      float64         `json:"fig9_speedup_vs_sequential"`
	BuildSpeedup     float64         `json:"build_speedup_vs_sequential"`
	WarmCache        CacheComparison `json:"warm_cache"`
	RecorderOverhead Overhead        `json:"recorder_overhead"`
	Trajectory       Trajectory      `json:"trajectory"`

	GeneratedAtSeconds int64 `json:"generated_at_unix"`
}

// Prior PRs' numbers on this machine: pre-PR 2 string-keyed sequential BFS
// (commit 06838d0), BENCH_PR2.json (commit 114722f), BENCH_PR3.json
// (commit a52c53f).
const (
	prePR2Baseline = 4093.0
	pr2Fig9Seq     = 8549.969311410969
	pr3Fig9Seq     = 9009.67991161761
	trajectoryNote = "pre-PR2: string-keyed sequential BFS. PR2: interned store + CSR + parallel frontier. PR3: observability layer. PR4 adds the persistent graph cache; the warm_cache section is the new headline."
)

func main() {
	var n, k, workers, rounds int
	var out, agcheckPath string
	var overheadCheck bool
	var threshold float64
	flag.IntVar(&n, "n", 1, "queue capacity N")
	flag.IntVar(&k, "k", 3, "value-domain size K")
	flag.IntVar(&workers, "workers", 4, "worker count for the parallel runs")
	flag.IntVar(&rounds, "rounds", 5, "best-of rounds for the overhead comparison")
	flag.StringVar(&out, "out", "BENCH_PR4.json", "output JSON path")
	flag.StringVar(&agcheckPath, "agcheck", "", "path to a built agcheck binary ('' = go build one)")
	flag.BoolVar(&overheadCheck, "overhead-check", false,
		"only compare recorder-on vs recorder-off builds; exit 1 when over the threshold")
	flag.Float64Var(&threshold, "overhead-threshold", 3.0,
		"max tolerated recorder overhead percent for -overhead-check")
	flag.Parse()

	cfg := queue.Config{N: n, Vals: k}

	if overheadCheck {
		ov := measureOverhead(cfg, workers, rounds)
		fmt.Printf("recorder overhead on %s build (best of %d): disabled %.3fs, enabled %.3fs, overhead %.2f%% (threshold %.1f%%)\n",
			instance(n, k), rounds, ov.DisabledBestSeconds, ov.EnabledBestSeconds, ov.OverheadPct, threshold)
		if ov.OverheadPct > threshold {
			fmt.Fprintf(os.Stderr, "benchpr4: recorder overhead %.2f%% exceeds %.1f%%\n", ov.OverheadPct, threshold)
			os.Exit(1)
		}
		return
	}

	if agcheckPath == "" {
		dir, err := os.MkdirTemp("", "benchpr4-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		agcheckPath = filepath.Join(dir, "agcheck")
		build := exec.Command("go", "build", "-o", agcheckPath, "./cmd/agcheck")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fatal(fmt.Errorf("building agcheck: %w", err))
		}
	}

	rep := Report{
		Instance:   instance(n, k),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Trajectory: Trajectory{
			PrePR2Fig9StatesPerSec: prePR2Baseline,
			PR2Fig9SeqStatesPerSec: pr2Fig9Seq,
			PR3Fig9SeqStatesPerSec: pr3Fig9Seq,
			Note:                   trajectoryNote,
		},
		GeneratedAtSeconds: time.Now().Unix(),
	}

	var err error
	if rep.BuildSeq, err = measureBuild(cfg, 1); err != nil {
		fatal(err)
	}
	if rep.BuildPar, err = measureBuild(cfg, workers); err != nil {
		fatal(err)
	}
	if rep.Fig9Seq, _, err = fig9FromReport(agcheckPath, n, k, 1, ""); err != nil {
		fatal(err)
	}
	if rep.Fig9Par, _, err = fig9FromReport(agcheckPath, n, k, workers, ""); err != nil {
		fatal(err)
	}
	if rep.WarmCache, err = measureWarmCache(agcheckPath, n, k, workers); err != nil {
		fatal(err)
	}
	rep.RecorderOverhead = measureOverhead(cfg, workers, rounds)

	if rep.Fig9Seq.StatesPerSec > 0 {
		rep.Fig9Speedup = rep.Fig9Par.StatesPerSec / rep.Fig9Seq.StatesPerSec
	}
	if rep.BuildSeq.StatesPerSec > 0 {
		rep.BuildSpeedup = rep.BuildPar.StatesPerSec / rep.BuildSeq.StatesPerSec
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s\nwrote %s\n", data, out)
}

func instance(n, k int) string {
	return fmt.Sprintf("Fig9 open-queue theorem, N=%d K=%d", n, k)
}

// fig9FromReport runs the built agcheck on the Fig. 9 instance with -report
// and extracts the measurement from the run report — the same artifact CI
// validates. A non-empty cacheDir enables the persistent cache.
func fig9FromReport(agcheck string, n, k, workers int, cacheDir string) (Measurement, *obs.Report, error) {
	dir, err := os.MkdirTemp("", "benchpr4-report-")
	if err != nil {
		return Measurement{}, nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "report.json")
	args := []string{
		"-model", "queues",
		"-n", fmt.Sprint(n), "-k", fmt.Sprint(k),
		"-workers", fmt.Sprint(workers),
		"-report", path,
	}
	if cacheDir != "" {
		args = append(args, "-cache-dir", cacheDir)
	}
	cmd := exec.Command(agcheck, args...)
	cmd.Stderr = os.Stderr
	start := time.Now()
	if err := cmd.Run(); err != nil {
		return Measurement{}, nil, fmt.Errorf("agcheck fig9 workers=%d: %w", workers, err)
	}
	wallWhole := time.Since(start).Seconds()
	data, err := os.ReadFile(path)
	if err != nil {
		return Measurement{}, nil, err
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Measurement{}, nil, fmt.Errorf("parsing run report: %w", err)
	}
	if rep.SchemaVersion != obs.SchemaVersion || rep.Verdict != "HOLDS" {
		return Measurement{}, nil, fmt.Errorf("unexpected run report: schema %d, verdict %s", rep.SchemaVersion, rep.Verdict)
	}
	wall := rep.Stats.ElapsedMS / 1000
	if wall == 0 {
		// A fully warm run meters no exploration; fall back to process wall.
		wall = wallWhole
	}
	m := Measurement{
		Workers:      workers,
		States:       rep.Stats.States,
		Transitions:  rep.Stats.Transitions,
		PeakFrontier: rep.Stats.PeakFrontier,
		WallSeconds:  wall,
	}
	if wall > 0 {
		m.StatesPerSec = float64(m.States) / wall
	}
	return m, &rep, nil
}

// measureWarmCache runs the Fig. 9 check twice against one cache directory
// and compares the wall clocks. The warm run must be fully warm: every
// graph served from the cache, zero states explored, same verdict.
func measureWarmCache(agcheck string, n, k, workers int) (CacheComparison, error) {
	cacheDir, err := os.MkdirTemp("", "benchpr4-cache-")
	if err != nil {
		return CacheComparison{}, err
	}
	defer os.RemoveAll(cacheDir)
	cold, coldRep, err := fig9FromReport(agcheck, n, k, workers, cacheDir)
	if err != nil {
		return CacheComparison{}, fmt.Errorf("cold cache run: %w", err)
	}
	warm, warmRep, err := fig9FromReport(agcheck, n, k, workers, cacheDir)
	if err != nil {
		return CacheComparison{}, fmt.Errorf("warm cache run: %w", err)
	}
	if warmRep.Stats.States != 0 {
		return CacheComparison{}, fmt.Errorf("warm run explored %d states, want 0 (cache not fully warm)", warmRep.Stats.States)
	}
	if warmRep.Cache == nil || warmRep.Cache.Hits == 0 {
		return CacheComparison{}, fmt.Errorf("warm run reports no cache hits")
	}
	if warmRep.Verdict != coldRep.Verdict {
		return CacheComparison{}, fmt.Errorf("warm verdict %s != cold verdict %s", warmRep.Verdict, coldRep.Verdict)
	}
	out := CacheComparison{
		ColdWallSeconds: cold.WallSeconds,
		WarmWallSeconds: warm.WallSeconds,
		ColdStates:      float64(cold.States),
		WarmHits:        warmRep.Cache.Hits,
		Verdict:         warmRep.Verdict,
	}
	if warm.WallSeconds > 0 {
		out.Speedup = cold.WallSeconds / warm.WallSeconds
	}
	return out, nil
}

// measureBuild times one in-process closed double-queue graph build.
func measureBuild(cfg queue.Config, workers int) (Measurement, error) {
	m := engine.NoLimit()
	start := time.Now()
	sys := cfg.DoubleSystem(true)
	sys.Workers = workers
	if _, err := sys.BuildWith(m); err != nil {
		return Measurement{}, err
	}
	wall := time.Since(start)
	st := m.Stats()
	out := Measurement{
		Workers:      workers,
		States:       st.States,
		Transitions:  st.Transitions,
		PeakFrontier: st.PeakFrontier,
		WallSeconds:  wall.Seconds(),
	}
	if wall > 0 {
		out.StatesPerSec = float64(st.States) / wall.Seconds()
	}
	return out, nil
}

// measureOverhead times the double-queue build best-of-rounds with a
// recorder attached and without, interleaved so machine drift hits both
// sides equally.
func measureOverhead(cfg queue.Config, workers, rounds int) Overhead {
	build := func(withRecorder bool) float64 {
		m := engine.NoLimit()
		var rec *obs.Recorder
		if withRecorder {
			rec = obs.New(m)
		}
		sys := cfg.DoubleSystem(true)
		sys.Workers = workers
		start := time.Now()
		if _, err := sys.BuildWith(m); err != nil {
			fatal(err)
		}
		wall := time.Since(start).Seconds()
		if rec != nil {
			rec.Finish("benchpr4", obs.Config{}, engine.Holds, "")
		}
		return wall
	}
	best := func(cur, next float64) float64 {
		if cur == 0 || next < cur {
			return next
		}
		return cur
	}
	ov := Overhead{Rounds: rounds}
	build(false) // warm up once before timing anything
	for i := 0; i < rounds; i++ {
		ov.DisabledBestSeconds = best(ov.DisabledBestSeconds, build(false))
		ov.EnabledBestSeconds = best(ov.EnabledBestSeconds, build(true))
	}
	if ov.DisabledBestSeconds > 0 {
		ov.OverheadPct = (ov.EnabledBestSeconds - ov.DisabledBestSeconds) / ov.DisabledBestSeconds * 100
	}
	return ov
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpr4:", err)
	os.Exit(2)
}
