// Command benchpr9 measures checker throughput for the PR 9 partitioned
// parallel level barrier and emits BENCH_PR9.json, keeping the PR 2/3/4/7
// numbers inline so the performance trajectory stays comparable across PRs.
//
// Headline sections:
//
//   - parallel_scaling: the Fig. 9 theorem through agcheck at 1 worker and
//     at -workers N (default 4), after the PR 9 barrier rebuild. The
//     speedup is only physically observable with >= 4 CPUs; on smaller
//     machines the section records the measurement, sets cpu_limited AND
//     gate_degraded (loudly — the degradation used to be silent), and the
//     -scaling-check gate degrades to a no-regression bound. CI pins the
//     scaling job to a >= 4-CPU runner via -require-cpus, so a 1-CPU
//     machine can never greenlight scaling.
//   - barrier: the serial fraction of the level barrier, from the
//     performance-telemetry counters — single-threaded seal time vs wall.
//     This is the Amdahl term PR 9 shrank; the companion agprof
//     -max-commit-pct gate asserts the same bound from a trace capture.
//   - reduction: the same instance with -reduce=por,sym vs -reduce=off.
//     The gate is a state-count ratio (>= 3x at K=3) with identical
//     verdicts — enforced, not merely reported.
//
// The recorder_overhead and telemetry_overhead sections carry the PR 3 and
// PR 8 acceptance gates forward unchanged.
//
// Usage:
//
//	go run ./scripts/benchpr9 -n 1 -k 3 -workers 4 -out BENCH_PR9.json
//	go run ./scripts/benchpr9 -overhead-check   # CI: recorder cost <= threshold
//	go run ./scripts/benchpr9 -telemetry-check  # CI: trace+metrics cost <= threshold
//	go run ./scripts/benchpr9 -scaling-check -require-cpus 4  # CI: parallel speedup gate
//	go run ./scripts/benchpr9 -reduction-check  # CI: reduction ratio + verdict gate
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"opentla/internal/engine"
	"opentla/internal/metrics"
	"opentla/internal/obs"
	"opentla/internal/queue"
	"opentla/internal/trace"
)

// Measurement is one timed exploration run.
type Measurement struct {
	Workers      int     `json:"workers"`
	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	PeakFrontier int     `json:"peak_frontier"`
	WallSeconds  float64 `json:"wall_seconds"`
	StatesPerSec float64 `json:"states_per_sec"`
}

// ParallelScaling is the first headline: the Fig. 9 theorem at one worker vs
// -workers N after the barrier rebuild.
type ParallelScaling struct {
	Seq     Measurement `json:"sequential"`
	Par     Measurement `json:"parallel"`
	Speedup float64     `json:"speedup"`
	// NumCPU is what the machine can actually run concurrently; with fewer
	// than Par.Workers CPUs the speedup is capacity-limited, not a property
	// of the frontier, and CPULimited is set.
	NumCPU     int  `json:"num_cpu"`
	CPULimited bool `json:"cpu_limited"`
	// GateDegraded records — loudly, in the committed artifact — that the
	// -scaling-check gate this measurement feeds was NOT the real speedup
	// target but the cpu-limited no-regression bound. A true value means
	// this JSON proves nothing about scaling.
	GateDegraded bool   `json:"gate_degraded"`
	Note         string `json:"note,omitempty"`
}

// BarrierProfile is the PR 9 headline metric: how much of a telemetry-on
// parallel build's wall is the single-threaded barrier seal. Captured from
// the performance-telemetry counters of an in-process Fig. 9-instance
// double-queue build.
type BarrierProfile struct {
	Workers               int     `json:"workers"`
	Levels                int64   `json:"levels"`
	WallSeconds           float64 `json:"wall_seconds"`
	SerialCommitSeconds   float64 `json:"serial_commit_seconds"`
	ParallelCommitSeconds float64 `json:"parallel_commit_seconds"`
	// SerialFraction is serial seal wall / total wall (the Amdahl term).
	SerialFraction float64 `json:"serial_fraction"`
}

// Reduction is the reduction headline: the same check with and without
// -reduce=por,sym.
type Reduction struct {
	Mode    string      `json:"mode"`
	Full    Measurement `json:"full"`
	Reduced Measurement `json:"reduced"`
	// StateRatio is full states / reduced states (higher is better).
	StateRatio      float64 `json:"state_ratio"`
	TransitionRatio float64 `json:"transition_ratio"`
	WallSpeedup     float64 `json:"wall_speedup"`
	VerdictFull     string  `json:"verdict_full"`
	VerdictReduced  string  `json:"verdict_reduced"`
	// Stats is the run report's reduction section (schema_version 5):
	// per-state ample vs full expansions and symmetry-collapsed successors.
	Stats *obs.ReductionReport `json:"stats,omitempty"`
}

// Overhead compares the graph build with and without an attached recorder.
type Overhead struct {
	Rounds              int     `json:"rounds"`
	DisabledBestSeconds float64 `json:"disabled_best_seconds"`
	EnabledBestSeconds  float64 `json:"enabled_best_seconds"`
	// OverheadPct is (enabled - disabled) / disabled * 100; negative values
	// are measurement noise.
	OverheadPct float64 `json:"overhead_pct"`
}

// Trajectory carries the prior PRs' numbers on the same instance, so
// BENCH_PR9.json is self-contained for trend analysis.
type Trajectory struct {
	PrePR2Fig9StatesPerSec float64 `json:"pre_pr2_fig9_seq_states_per_sec"`
	PR2Fig9SeqStatesPerSec float64 `json:"pr2_fig9_seq_states_per_sec"`
	PR3Fig9SeqStatesPerSec float64 `json:"pr3_fig9_seq_states_per_sec"`
	PR4Fig9SeqStatesPerSec float64 `json:"pr4_fig9_seq_states_per_sec"`
	PR4Fig9Speedup4W       float64 `json:"pr4_fig9_speedup_at_4_workers"`
	PR7Fig9SeqStatesPerSec float64 `json:"pr7_fig9_seq_states_per_sec"`
	PR7Fig9Speedup4W       float64 `json:"pr7_fig9_speedup_at_4_workers"`
	Note                   string  `json:"note"`
}

// Report is the emitted BENCH_PR9.json document.
type Report struct {
	Instance          string          `json:"instance"`
	GOMAXPROCS        int             `json:"gomaxprocs"`
	Scaling           ParallelScaling `json:"parallel_scaling"`
	Barrier           BarrierProfile  `json:"barrier"`
	Reduction         Reduction       `json:"reduction"`
	RecorderOverhead  Overhead        `json:"recorder_overhead"`
	TelemetryOverhead Overhead        `json:"telemetry_overhead"`
	Trajectory        Trajectory      `json:"trajectory"`

	GeneratedAtSeconds int64 `json:"generated_at_unix"`
}

// Prior PRs' numbers: pre-PR 2 string-keyed sequential BFS (commit 06838d0),
// BENCH_PR2.json (commit 114722f), BENCH_PR3.json (commit a52c53f),
// BENCH_PR4.json (commit 882380a), BENCH_PR7.json (commit 196eb52 — whose
// 4-worker "speedup" of 1.01x on a 1-CPU machine is the measurement the
// PR 9 partitioned barrier, and the gate_degraded field, exist to fix).
const (
	prePR2Baseline = 4093.0
	pr2Fig9Seq     = 8549.969311410969
	pr3Fig9Seq     = 9009.67991161761
	pr4Fig9Seq     = 9004.159458150369
	pr4Speedup4W   = 0.9718086437355906
	pr7Fig9Seq     = 13263.269331114385
	pr7Speedup4W   = 1.0127564967305855
	trajectoryNote = "pre-PR2: string-keyed sequential BFS. PR2: interned store + CSR + parallel frontier. " +
		"PR3: observability layer. PR4: persistent graph cache (4-worker theorem at 0.97x sequential). " +
		"PR7: reduction-aware pipeline (4-worker at 1.01x on a 1-CPU machine — cpu_limited). " +
		"PR9 parallelizes the level-barrier commit path: partitioned numbering, per-worker CSR commit, " +
		"committed-index dedup; the barrier section records the remaining serial fraction."
)

func main() {
	var n, k, workers, rounds, requireCPUs int
	var out, agcheckPath, reduceMode string
	var overheadCheck, telemetryCheck, scalingCheck, reductionCheck bool
	var threshold, scalingTarget, noRegressionFloor, reductionTarget float64
	flag.IntVar(&n, "n", 1, "queue capacity N")
	flag.IntVar(&k, "k", 3, "value-domain size K")
	flag.IntVar(&workers, "workers", 4, "worker count for the parallel runs")
	flag.IntVar(&rounds, "rounds", 5, "best-of rounds for the overhead comparison")
	flag.IntVar(&requireCPUs, "require-cpus", 0,
		"fail -scaling-check outright when the machine has fewer CPUs (0 = allow the degraded no-regression gate)")
	flag.StringVar(&out, "out", "BENCH_PR9.json", "output JSON path")
	flag.StringVar(&agcheckPath, "agcheck", "", "path to a built agcheck binary ('' = go build one)")
	flag.StringVar(&reduceMode, "reduce", "por,sym", "reduction mode for the reduction section")
	flag.BoolVar(&overheadCheck, "overhead-check", false,
		"only compare recorder-on vs recorder-off builds; exit 1 when over the threshold")
	flag.BoolVar(&telemetryCheck, "telemetry-check", false,
		"only compare recorder+trace+metrics builds vs recorder-only; exit 1 when over the threshold")
	flag.Float64Var(&threshold, "overhead-threshold", 3.0,
		"max tolerated overhead percent for -overhead-check and -telemetry-check")
	flag.BoolVar(&scalingCheck, "scaling-check", false,
		"only measure the Fig. 9 parallel speedup; exit 1 below the target (>= 4 CPUs) or the no-regression floor (< 4 CPUs)")
	flag.Float64Var(&scalingTarget, "scaling-target", 1.5,
		"required Fig. 9 speedup at -workers on a machine with enough CPUs")
	flag.Float64Var(&noRegressionFloor, "scaling-floor", 0.85,
		"required parallel/sequential ratio when the machine has fewer CPUs than workers (no-regression bound)")
	flag.BoolVar(&reductionCheck, "reduction-check", false,
		"only measure the -reduce state ratio; exit 1 below the target or on a verdict mismatch")
	flag.Float64Var(&reductionTarget, "reduction-target", 3.0,
		"required full/reduced state ratio for -reduction-check")
	flag.Parse()

	cfg := queue.Config{N: n, Vals: k}

	if overheadCheck {
		ov := measureOverhead(cfg, workers, rounds)
		fmt.Printf("recorder overhead on %s build (best of %d): disabled %.3fs, enabled %.3fs, overhead %.2f%% (threshold %.1f%%)\n",
			instance(n, k), rounds, ov.DisabledBestSeconds, ov.EnabledBestSeconds, ov.OverheadPct, threshold)
		if ov.OverheadPct > threshold {
			fmt.Fprintf(os.Stderr, "benchpr9: recorder overhead %.2f%% exceeds %.1f%%\n", ov.OverheadPct, threshold)
			os.Exit(1)
		}
		return
	}

	if telemetryCheck {
		ov := measureTelemetryOverhead(cfg, workers, rounds)
		fmt.Printf("telemetry overhead on %s build (best of %d): recorder-only %.3fs, +trace+metrics %.3fs, overhead %.2f%% (threshold %.1f%%)\n",
			instance(n, k), rounds, ov.DisabledBestSeconds, ov.EnabledBestSeconds, ov.OverheadPct, threshold)
		if ov.OverheadPct > threshold {
			fmt.Fprintf(os.Stderr, "benchpr9: telemetry overhead %.2f%% exceeds %.1f%%\n", ov.OverheadPct, threshold)
			os.Exit(1)
		}
		return
	}

	if agcheckPath == "" {
		dir, err := os.MkdirTemp("", "benchpr9-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		agcheckPath = filepath.Join(dir, "agcheck")
		build := exec.Command("go", "build", "-o", agcheckPath, "./cmd/agcheck")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			fatal(fmt.Errorf("building agcheck: %w", err))
		}
	}

	if scalingCheck {
		if requireCPUs > 0 && runtime.NumCPU() < requireCPUs {
			// The loud path the ISSUE demands: a small runner must never
			// greenlight (or silently soft-pass) the scaling gate.
			fmt.Printf("::error::benchpr9: scaling gate needs >= %d CPUs, runner has %d — refusing to run the degraded gate\n",
				requireCPUs, runtime.NumCPU())
			os.Exit(1)
		}
		sc, err := measureScaling(agcheckPath, n, k, workers, scalingTarget, noRegressionFloor)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fig9 %s: sequential %.0f states/s, %d workers %.0f states/s, speedup %.2fx (%s)\n",
			instance(n, k), sc.Seq.StatesPerSec, workers, sc.Par.StatesPerSec, sc.Speedup, sc.Note)
		if sc.GateDegraded {
			// GitHub Actions warning annotation; a plain loud line elsewhere.
			fmt.Printf("::warning::benchpr9: scaling gate DEGRADED to a no-regression bound (%d CPUs for %d workers) — this run proves nothing about scaling\n",
				sc.NumCPU, workers)
		}
		if !scalingPass(sc, scalingTarget, noRegressionFloor) {
			fmt.Fprintf(os.Stderr, "benchpr9: scaling gate failed: %s\n", sc.Note)
			os.Exit(1)
		}
		return
	}

	if reductionCheck {
		rd, err := measureReduction(agcheckPath, n, k, workers, reduceMode)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("fig9 %s -reduce=%s: %d -> %d states (%.2fx), verdicts %s/%s\n",
			instance(n, k), reduceMode, rd.Full.States, rd.Reduced.States, rd.StateRatio,
			rd.VerdictFull, rd.VerdictReduced)
		if rd.VerdictFull != rd.VerdictReduced {
			fmt.Fprintf(os.Stderr, "benchpr9: reduced verdict %s != full verdict %s\n", rd.VerdictReduced, rd.VerdictFull)
			os.Exit(1)
		}
		if rd.StateRatio < reductionTarget {
			fmt.Fprintf(os.Stderr, "benchpr9: reduction ratio %.2fx below target %.1fx\n", rd.StateRatio, reductionTarget)
			os.Exit(1)
		}
		return
	}

	rep := Report{
		Instance:   instance(n, k),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Trajectory: Trajectory{
			PrePR2Fig9StatesPerSec: prePR2Baseline,
			PR2Fig9SeqStatesPerSec: pr2Fig9Seq,
			PR3Fig9SeqStatesPerSec: pr3Fig9Seq,
			PR4Fig9SeqStatesPerSec: pr4Fig9Seq,
			PR4Fig9Speedup4W:       pr4Speedup4W,
			PR7Fig9SeqStatesPerSec: pr7Fig9Seq,
			PR7Fig9Speedup4W:       pr7Speedup4W,
			Note:                   trajectoryNote,
		},
		GeneratedAtSeconds: time.Now().Unix(),
	}

	var err error
	if rep.Scaling, err = measureScaling(agcheckPath, n, k, workers, scalingTarget, noRegressionFloor); err != nil {
		fatal(err)
	}
	rep.Barrier = measureBarrier(cfg, workers)
	if rep.Reduction, err = measureReduction(agcheckPath, n, k, workers, reduceMode); err != nil {
		fatal(err)
	}
	rep.RecorderOverhead = measureOverhead(cfg, workers, rounds)
	rep.TelemetryOverhead = measureTelemetryOverhead(cfg, workers, rounds)

	if rep.Scaling.GateDegraded {
		fmt.Printf("::warning::benchpr9: scaling measurement cpu-limited (%d CPUs for %d workers) — gate_degraded recorded in %s\n",
			rep.Scaling.NumCPU, workers, out)
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s\nwrote %s\n", data, out)
}

func instance(n, k int) string {
	return fmt.Sprintf("Fig9 open-queue theorem, N=%d K=%d", n, k)
}

// measureScaling runs the Fig. 9 check sequentially and at -workers, and
// annotates the comparison with the machine's actual CPU capacity.
func measureScaling(agcheck string, n, k, workers int, target, floor float64) (ParallelScaling, error) {
	seq, _, err := fig9FromReport(agcheck, n, k, 1, "")
	if err != nil {
		return ParallelScaling{}, err
	}
	par, _, err := fig9FromReport(agcheck, n, k, workers, "")
	if err != nil {
		return ParallelScaling{}, err
	}
	sc := ParallelScaling{Seq: seq, Par: par, NumCPU: runtime.NumCPU()}
	if seq.StatesPerSec > 0 {
		sc.Speedup = par.StatesPerSec / seq.StatesPerSec
	}
	sc.CPULimited = sc.NumCPU < workers
	sc.GateDegraded = sc.CPULimited
	if sc.CPULimited {
		sc.Note = fmt.Sprintf("machine has %d CPUs for %d workers: the %.1fx gate needs >= %d CPUs, so the gate DEGRADES to a no-regression bound (ratio >= %.2f); gate_degraded=true",
			sc.NumCPU, workers, target, workers, floor)
	} else {
		sc.Note = fmt.Sprintf("gate: speedup >= %.1fx at %d workers", target, workers)
	}
	return sc, nil
}

// scalingPass applies the environment-aware gate: the real speedup target
// with enough CPUs, a no-regression floor without them.
func scalingPass(sc ParallelScaling, target, floor float64) bool {
	if sc.CPULimited {
		return sc.Speedup >= floor
	}
	return sc.Speedup >= target
}

// measureBarrier builds the double-queue system in-process with the
// performance-telemetry registry attached and reads the barrier counters
// back: serial seal time, aggregate parallel commit time, levels, and the
// serial fraction of wall — the barrier-serial-fraction metric the PR 9
// acceptance tracks (agprof gates the same quantity from a trace capture).
func measureBarrier(cfg queue.Config, workers int) BarrierProfile {
	m := engine.NoLimit()
	rec := obs.New(m)
	rec.SetTracer(trace.New())
	reg := metrics.NewRegistry()
	rec.SetMetrics(reg)
	sys := cfg.DoubleSystem(true)
	sys.Workers = workers
	start := time.Now()
	if _, err := sys.BuildWith(m); err != nil {
		fatal(err)
	}
	wall := time.Since(start).Seconds()
	rec.Finish("benchpr9", obs.Config{}, engine.Holds, "")

	bp := BarrierProfile{Workers: workers, WallSeconds: wall}
	for _, pt := range reg.Snapshot() {
		switch pt.Name {
		case "opentla_barrier_commit_nanoseconds_total":
			bp.SerialCommitSeconds = float64(pt.Value) / 1e9
		case "opentla_barrier_parallel_commit_nanoseconds_total":
			bp.ParallelCommitSeconds = float64(pt.Value) / 1e9
		case "opentla_levels_total":
			bp.Levels = pt.Value
		}
	}
	if wall > 0 {
		bp.SerialFraction = bp.SerialCommitSeconds / wall
	}
	return bp
}

// measureReduction runs the Fig. 9 check full and with -reduce, and
// compares state counts and verdicts.
func measureReduction(agcheck string, n, k, workers int, mode string) (Reduction, error) {
	full, fullRep, err := fig9FromReport(agcheck, n, k, workers, "")
	if err != nil {
		return Reduction{}, fmt.Errorf("full run: %w", err)
	}
	red, redRep, err := fig9FromReport(agcheck, n, k, workers, mode)
	if err != nil {
		return Reduction{}, fmt.Errorf("reduced run: %w", err)
	}
	out := Reduction{
		Mode:           mode,
		Full:           full,
		Reduced:        red,
		VerdictFull:    fullRep.Verdict,
		VerdictReduced: redRep.Verdict,
		Stats:          redRep.Reduction,
	}
	if red.States > 0 {
		out.StateRatio = float64(full.States) / float64(red.States)
	}
	if red.Transitions > 0 {
		out.TransitionRatio = float64(full.Transitions) / float64(red.Transitions)
	}
	if red.WallSeconds > 0 {
		out.WallSpeedup = full.WallSeconds / red.WallSeconds
	}
	return out, nil
}

// fig9FromReport runs the built agcheck on the Fig. 9 instance with -report
// and extracts the measurement from the run report — the same artifact CI
// validates. A non-empty reduceMode adds -reduce.
func fig9FromReport(agcheck string, n, k, workers int, reduceMode string) (Measurement, *obs.Report, error) {
	dir, err := os.MkdirTemp("", "benchpr9-report-")
	if err != nil {
		return Measurement{}, nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "report.json")
	args := []string{
		"-model", "queues",
		"-n", fmt.Sprint(n), "-k", fmt.Sprint(k),
		"-workers", fmt.Sprint(workers),
		"-report", path,
	}
	if reduceMode != "" {
		args = append(args, "-reduce", reduceMode)
	}
	cmd := exec.Command(agcheck, args...)
	cmd.Stderr = os.Stderr
	start := time.Now()
	if err := cmd.Run(); err != nil {
		return Measurement{}, nil, fmt.Errorf("agcheck fig9 workers=%d reduce=%q: %w", workers, reduceMode, err)
	}
	wallWhole := time.Since(start).Seconds()
	data, err := os.ReadFile(path)
	if err != nil {
		return Measurement{}, nil, err
	}
	var rep obs.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Measurement{}, nil, fmt.Errorf("parsing run report: %w", err)
	}
	if rep.SchemaVersion != obs.SchemaVersion || rep.Verdict != "HOLDS" {
		return Measurement{}, nil, fmt.Errorf("unexpected run report: schema %d, verdict %s", rep.SchemaVersion, rep.Verdict)
	}
	wall := rep.Stats.ElapsedMS / 1000
	if wall == 0 {
		wall = wallWhole
	}
	m := Measurement{
		Workers:      workers,
		States:       rep.Stats.States,
		Transitions:  rep.Stats.Transitions,
		PeakFrontier: rep.Stats.PeakFrontier,
		WallSeconds:  wall,
	}
	if wall > 0 {
		m.StatesPerSec = float64(m.States) / wall
	}
	return m, &rep, nil
}

// measureOverhead times the double-queue build best-of-rounds with a
// recorder attached and without, interleaved so machine drift hits both
// sides equally.
func measureOverhead(cfg queue.Config, workers, rounds int) Overhead {
	build := func(withRecorder bool) float64 {
		m := engine.NoLimit()
		var rec *obs.Recorder
		if withRecorder {
			rec = obs.New(m)
		}
		sys := cfg.DoubleSystem(true)
		sys.Workers = workers
		start := time.Now()
		if _, err := sys.BuildWith(m); err != nil {
			fatal(err)
		}
		wall := time.Since(start).Seconds()
		if rec != nil {
			rec.Finish("benchpr9", obs.Config{}, engine.Holds, "")
		}
		return wall
	}
	best := func(cur, next float64) float64 {
		if cur == 0 || next < cur {
			return next
		}
		return cur
	}
	ov := Overhead{Rounds: rounds}
	build(false) // warm up once before timing anything
	for i := 0; i < rounds; i++ {
		ov.DisabledBestSeconds = best(ov.DisabledBestSeconds, build(false))
		ov.EnabledBestSeconds = best(ov.EnabledBestSeconds, build(true))
	}
	if ov.DisabledBestSeconds > 0 {
		ov.OverheadPct = (ov.EnabledBestSeconds - ov.DisabledBestSeconds) / ov.DisabledBestSeconds * 100
	}
	return ov
}

// measureTelemetryOverhead times the double-queue build with a bare recorder
// vs a recorder carrying a tracer and a metric registry (the -trace and
// -metrics-out configuration), interleaved best-of-rounds like
// measureOverhead. This carries the PR 8 acceptance gate: full per-worker
// timeline capture must stay within the same few-percent envelope the PR 3
// recorder was held to — now including the parallel commit-phase slices.
func measureTelemetryOverhead(cfg queue.Config, workers, rounds int) Overhead {
	build := func(withTelemetry bool) float64 {
		m := engine.NoLimit()
		rec := obs.New(m)
		var tr *trace.Tracer
		if withTelemetry {
			tr = trace.New()
			rec.SetTracer(tr)
			rec.SetMetrics(metrics.NewRegistry())
		}
		sys := cfg.DoubleSystem(true)
		sys.Workers = workers
		start := time.Now()
		if _, err := sys.BuildWith(m); err != nil {
			fatal(err)
		}
		wall := time.Since(start).Seconds()
		rec.Finish("benchpr9", obs.Config{}, engine.Holds, "")
		return wall
	}
	best := func(cur, next float64) float64 {
		if cur == 0 || next < cur {
			return next
		}
		return cur
	}
	ov := Overhead{Rounds: rounds}
	build(false) // warm up once before timing anything
	for i := 0; i < rounds; i++ {
		ov.DisabledBestSeconds = best(ov.DisabledBestSeconds, build(false))
		ov.EnabledBestSeconds = best(ov.EnabledBestSeconds, build(true))
	}
	if ov.DisabledBestSeconds > 0 {
		ov.OverheadPct = (ov.EnabledBestSeconds - ov.DisabledBestSeconds) / ov.DisabledBestSeconds * 100
	}
	return ov
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchpr9:", err)
	os.Exit(2)
}
