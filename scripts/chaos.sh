#!/usr/bin/env bash
# chaos.sh — process-level crash sweep over the graph cache.
#
# Kills agcheck with a real os.Exit at mutating cache operation 1, 2, 3, ...
# (via OPENTLA_CACHE_CRASH_AT, see cache.Flags and iofs.Crash), recovers each
# crashed cache with a plain rerun under -resume, and requires:
#
#   - the recovery run reproduces the reference verdict (exit 0);
#   - every .snap file is byte-identical to an uninterrupted run's (the
#     encoding is deterministic, so equal files == identical graphs);
#   - no torn temp files or quarantined entries survive recovery;
#   - agcachectl fsck finds nothing.
#
# The sweep is self-sizing: it stops at the first op index past the
# workload's last write (the crashed run exits with the verdict code instead
# of iofs.CrashExitCode = 7). The in-process twin of this sweep is
# TestCrashAtEveryWriteOp in internal/cache; the op counter is defined
# identically on both sides, so a crash point found here names the same
# operation there.
#
# Usage:
#   scripts/chaos.sh                     # defaults: -model queues -n 1 -k 2
#   MODEL=queues N=1 K=2 scripts/chaos.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MODEL="${MODEL:-queues}"
N="${N:-1}"
K="${K:-2}"
MAX_OPS="${MAX_OPS:-200}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/agcheck" ./cmd/agcheck
go build -o "$tmp/agcachectl" ./cmd/agcachectl

ref="$tmp/ref"
"$tmp/agcheck" -model "$MODEL" -n "$N" -k "$K" -cache-dir "$ref" >/dev/null
echo "chaos: reference run complete ($(ls "$ref"/*.snap | wc -l) snapshots)"

# verify_dir asserts the recovered cache is indistinguishable from the
# reference: same snapshot set, byte for byte, and no crash debris.
verify_dir() {
    local dir="$1"
    local f
    for f in "$ref"/*.snap; do
        if ! cmp -s "$f" "$dir/$(basename "$f")"; then
            echo "chaos: FAIL: $(basename "$f") differs from the reference after recovery" >&2
            exit 1
        fi
    done
    local want got
    want="$(ls "$ref"/*.snap | wc -l)"
    got="$(ls "$dir"/*.snap | wc -l)"
    if [ "$want" != "$got" ]; then
        echo "chaos: FAIL: $got snapshots after recovery, reference has $want" >&2
        exit 1
    fi
    if ls "$dir"/*.tmp >/dev/null 2>&1; then
        echo "chaos: FAIL: orphaned temp files survive recovery" >&2
        exit 1
    fi
    if ls "$dir"/*.quarantined >/dev/null 2>&1; then
        echo "chaos: FAIL: quarantined entries after a pure crash (nothing should need quarantine)" >&2
        exit 1
    fi
    "$tmp/agcachectl" fsck -cache-dir "$dir" >/dev/null
}

at=1
while :; do
    if [ "$at" -gt "$MAX_OPS" ]; then
        echo "chaos: FAIL: sweep did not terminate within $MAX_OPS ops" >&2
        exit 1
    fi
    dir="$tmp/crash-$at"
    set +e
    OPENTLA_CACHE_CRASH_AT="$at" "$tmp/agcheck" -model "$MODEL" -n "$N" -k "$K" \
        -cache-dir "$dir" >/dev/null 2>&1
    code=$?
    set -e
    if [ "$code" -ne 7 ]; then
        # Past the workload's last write: the run completed untouched and
        # doubles as the sweep's own reference check.
        if [ "$code" -ne 0 ]; then
            echo "chaos: FAIL: clean run at op $at exited $code" >&2
            exit 1
        fi
        verify_dir "$dir"
        echo "chaos: PASS: swept $((at - 1)) crash points (workload performs $((at - 1)) mutating cache ops)"
        break
    fi
    # Recover: a plain rerun with -resume must converge to the reference.
    "$tmp/agcheck" -model "$MODEL" -n "$N" -k "$K" -cache-dir "$dir" -resume >/dev/null
    verify_dir "$dir"
    echo "chaos: crash at op $at recovered"
    at=$((at + 1))
done
