#!/usr/bin/env bash
# bench.sh — run the PR 2 exploration benchmark and emit BENCH_PR2.json.
#
# Measures the Fig. 9 open-queue theorem (N=1, K=3 by default) sequentially
# and with a parallel worker pool, plus the raw double-queue graph build, and
# compares against the pre-refactor baseline embedded in scripts/benchpr2.
#
# Usage:
#   scripts/bench.sh                 # defaults: N=1 K=3 workers=4 -> BENCH_PR2.json
#   scripts/bench.sh -n 1 -k 2 -workers 2 -out /tmp/bench.json
#
# Also runs the Go benchmark suite briefly (BenchmarkBuild_Parallel,
# BenchmarkFig9_Parallel) so regressions show up next to the JSON numbers;
# set BENCH_SKIP_GO=1 to skip that step.
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./scripts/benchpr2 "$@"

if [ "${BENCH_SKIP_GO:-0}" != "1" ]; then
    echo
    echo "== go test -bench (short) =="
    go test -run '^$' -bench 'Build_Parallel|Fig9_Parallel' -benchtime 1x .
fi
