#!/usr/bin/env bash
# bench.sh — run the PR 7 benchmark and emit BENCH_PR7.json.
#
# The Fig. 9 open-queue theorem (N=1, K=3 by default) is measured through
# agcheck's machine-readable -report run reports — the same artifact CI
# validates — at 1 worker and at a parallel worker pool (the parallel
# section records NumCPU and flags cpu-limited machines); the reduction
# section reruns the theorem with -reduce (por,sym by default) and reports
# state/transition/wall ratios plus the report's reduction counters; and
# the recorder-on vs recorder-off overhead comparison backs the
# "observability costs < 3%" contract. Prior PRs' numbers are embedded in
# the trajectory section of the output.
#
# Usage:
#   scripts/bench.sh                 # defaults: N=1 K=3 workers=4 -> BENCH_PR7.json
#   scripts/bench.sh -n 1 -k 2 -workers 2 -out /tmp/bench.json
#
# Also runs the Go benchmark suite briefly (BenchmarkBuild_Parallel,
# BenchmarkFig9_Parallel) so regressions show up next to the JSON numbers;
# set BENCH_SKIP_GO=1 to skip that step.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/agcheck" ./cmd/agcheck

go run ./scripts/benchpr9 -agcheck "$tmp/agcheck" "$@"

if [ "${BENCH_SKIP_GO:-0}" != "1" ]; then
    echo
    echo "== go test -bench (short) =="
    go test -run '^$' -bench 'Build_Parallel|Fig9_Parallel' -benchtime 1x .
fi
