package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtureFindings runs the linter over the lintme fixture and pins
// every expected finding (and only those): the fixture's comments label
// each site good or bad.
func TestFixtureFindings(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "lintme"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, "lintme", []string{root})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.String())
		t.Log(f)
	}
	wantSubstrings := []string{
		":23:", // map range in seal
		":27:", // map range inside closure
		":49:", // c.hits++
		":51:", // plain read n := c.hits
	}
	if len(findings) != len(wantSubstrings) {
		t.Fatalf("got %d findings, want %d:\n%s", len(findings), len(wantSubstrings), strings.Join(got, "\n"))
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(got[i], want) {
			t.Errorf("finding %d = %q, want line %q", i, got[i], want)
		}
	}
	for _, f := range got {
		if !strings.Contains(f, "aglint:") {
			t.Errorf("finding %q does not name its marker", f)
		}
	}
}

// TestCleanRepo lints the repository itself: the annotated seal/commit/
// snapshot paths and atomic fields must be clean, or the lint CI job
// breaks on every push.
func TestCleanRepo(t *testing.T) {
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := expandPattern(filepath.Join(modRoot, "internal") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(modRoot, modPath, dirs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}

// TestCLI pins the command's exit codes and output plumbing.
func TestCLI(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	out.Reset()
	errb.Reset()
	// Pointed at the fixture, the CLI reports its findings and exits 1.
	if code := run([]string{"./testdata/lintme"}, &out, &errb); code != 1 {
		t.Errorf("fixture dir: exit %d, want 1 (stderr %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "aglint:deterministic") ||
		!strings.Contains(out.String(), "aglint:atomic") {
		t.Errorf("stdout missing findings:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "findings") {
		t.Errorf("stderr missing the findings summary: %s", errb.String())
	}
}
