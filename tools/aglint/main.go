package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: aglint <package-dir | ./dir/...> ...")
		return 2
	}
	modRoot, modPath, err := findModule(".")
	if err != nil {
		fmt.Fprintln(stderr, "aglint:", err)
		return 2
	}
	var dirs []string
	for _, arg := range args {
		expanded, err := expandPattern(arg)
		if err != nil {
			fmt.Fprintln(stderr, "aglint:", err)
			return 2
		}
		dirs = append(dirs, expanded...)
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "aglint: no packages matched")
		return 2
	}
	findings, err := Run(modRoot, modPath, dirs)
	if err != nil {
		fmt.Fprintln(stderr, "aglint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "aglint: %d findings\n", len(findings))
		return 1
	}
	return 0
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return abs, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module directive", abs)
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// expandPattern resolves one argument: a plain directory, or a Go-style
// recursive pattern dir/... matching every package directory beneath it.
// Directories named testdata (and hidden directories) are skipped, as the
// go tool does.
func expandPattern(arg string) ([]string, error) {
	base, recursive := strings.CutSuffix(arg, "/...")
	if base == "" {
		base = "."
	}
	if !recursive {
		return []string{arg}, nil
	}
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}
