// Command aglint is the repo's custom determinism-and-atomicity linter.
// It enforces two invariants the standard toolchain has no checker for:
//
//  1. aglint:deterministic — a function whose doc comment carries this
//     marker must not iterate a map with range. The marked functions feed
//     byte-exact artifacts (snapshot codecs, cache keys, commit paths);
//     Go's randomized map iteration order would make their output differ
//     between runs, poisoning content-addressed caches and replay
//     comparisons.
//
//  2. aglint:atomic — a struct field whose comment carries this marker is
//     part of a lock-free protocol and must only be accessed through
//     sync/atomic: either as the &-argument of a sync/atomic function
//     (atomic.LoadUint64(&s.fp)) or, for atomic.Int64-style fields, via
//     the type's own methods. A plain read or assignment is a data race
//     waiting for the right interleaving.
//
// A finding can be suppressed with an aglint:ignore comment on the same
// line, for the rare site where the access is provably pre-publication.
//
// Usage:
//
//	aglint ./internal/... ./cmd/...
//
// aglint is self-contained (standard library only): it resolves the
// module's own packages by walking the repository and type-checks against
// stdlib source, so it needs no module cache or network.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	markDeterministic = "aglint:deterministic"
	markAtomic        = "aglint:atomic"
	markIgnore        = "aglint:ignore"
)

// Finding is one linter violation.
type Finding struct {
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message)
}

// loader type-checks the module's packages with full type information,
// resolving intra-module imports by directory and everything else from
// stdlib source.
type loader struct {
	fset    *token.FileSet
	std     types.Importer
	modPath string
	modRoot string
	pkgs    map[string]*types.Package
	checked map[string]*checkedPkg
}

// checkedPkg is one fully parsed and type-checked package.
type checkedPkg struct {
	dir   string
	files []*ast.File
	info  *types.Info
	pkg   *types.Package
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		modPath: modPath,
		modRoot: modRoot,
		pkgs:    map[string]*types.Package{},
		checked: map[string]*checkedPkg{},
	}
}

// Import implements types.Importer for the type-checker's import clauses.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		cp, err := l.load(filepath.Join(l.modRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return cp.pkg, nil
	}
	p, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// load parses and type-checks the package in dir (non-test files only).
func (l *loader) load(dir, importPath string) (*checkedPkg, error) {
	if cp, ok := l.checked[importPath]; ok {
		return cp, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	cp := &checkedPkg{dir: dir, files: files, info: info, pkg: pkg}
	l.pkgs[importPath] = pkg
	l.checked[importPath] = cp
	return cp, nil
}

// Run lints every package directory and returns the findings in file
// order. modRoot is the repository root (the directory holding go.mod),
// modPath the module path it declares, dirs the package directories.
func Run(modRoot, modPath string, dirs []string) ([]Finding, error) {
	l := newLoader(modRoot, modPath)
	var findings []Finding
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(modRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("%s is outside module root %s", dir, modRoot)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		cp, err := l.load(abs, importPath)
		if err != nil {
			return nil, err
		}
		findings = append(findings, lintPackage(l.fset, cp)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return findings, nil
}

func lintPackage(fset *token.FileSet, cp *checkedPkg) []Finding {
	var findings []Finding
	for _, f := range cp.files {
		ignore := ignoreLines(fset, f)
		findings = append(findings, checkDeterministic(fset, cp.info, f, ignore)...)
	}
	atomicFields := collectAtomicFields(cp)
	if len(atomicFields) > 0 {
		for _, f := range cp.files {
			ignore := ignoreLines(fset, f)
			findings = append(findings, checkAtomicAccess(fset, cp.info, f, atomicFields, ignore)...)
		}
	}
	return findings
}

// ignoreLines returns the set of line numbers carrying aglint:ignore.
func ignoreLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, markIgnore) {
				out[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// checkDeterministic flags range-over-map inside functions marked
// aglint:deterministic (including closures they contain).
func checkDeterministic(fset *token.FileSet, info *types.Info, f *ast.File, ignore map[int]bool) []Finding {
	var findings []Finding
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || !strings.Contains(fd.Doc.Text(), markDeterministic) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pos := fset.Position(rs.Pos())
			if ignore[pos.Line] {
				return true
			}
			findings = append(findings, Finding{
				Pos: pos,
				Message: fmt.Sprintf("range over map %s in %s, which is marked %s: map iteration order is randomized",
					types.TypeString(tv.Type, nil), fd.Name.Name, markDeterministic),
			})
			return true
		})
	}
	return findings
}

// collectAtomicFields returns the struct-field objects whose declarations
// carry aglint:atomic.
func collectAtomicFields(cp *checkedPkg) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range cp.files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				marked := field.Doc != nil && strings.Contains(field.Doc.Text(), markAtomic) ||
					field.Comment != nil && strings.Contains(field.Comment.Text(), markAtomic)
				if !marked {
					continue
				}
				for _, name := range field.Names {
					if obj := cp.info.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// checkAtomicAccess flags selector accesses to marked fields outside
// sync/atomic call sites.
func checkAtomicAccess(fset *token.FileSet, info *types.Info, f *ast.File, fields map[types.Object]bool, ignore map[int]bool) []Finding {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	var findings []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || !fields[s.Obj()] {
			return true
		}
		if atomicUse(info, parents, sel) {
			return true
		}
		pos := fset.Position(sel.Pos())
		if ignore[pos.Line] {
			return true
		}
		findings = append(findings, Finding{
			Pos: pos,
			Message: fmt.Sprintf("field %s is marked %s but accessed without sync/atomic",
				s.Obj().Name(), markAtomic),
		})
		return true
	})
	return findings
}

// atomicUse reports whether the field selector is used through sync/atomic:
// as &x.f in a sync/atomic function call, or as the receiver of a method on
// a sync/atomic type (atomic.Int64 and friends).
func atomicUse(info *types.Info, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parents[sel].(type) {
	case *ast.UnaryExpr:
		if p.Op != token.AND {
			return false
		}
		call, ok := parents[p].(*ast.CallExpr)
		if !ok {
			return false
		}
		return isAtomicFunc(info, call.Fun)
	case *ast.SelectorExpr:
		// x.f.Load(): the outer selector must resolve to a method whose
		// receiver type lives in sync/atomic.
		if p.X != sel {
			return false
		}
		if s, ok := info.Selections[p]; ok {
			if fn, ok := s.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				_, isCall := parents[p].(*ast.CallExpr)
				return isCall
			}
		}
	}
	return false
}

// isAtomicFunc reports whether the call target is a sync/atomic function.
func isAtomicFunc(info *types.Info, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "sync/atomic"
}
