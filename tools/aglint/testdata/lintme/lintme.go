// Package lintme is the aglint test fixture: each site below is labeled
// good (no finding) or bad (exactly one finding).
package lintme

import "sync/atomic"

type counters struct {
	// bad when accessed plainly: aglint:atomic
	hits uint64
	// gauge is a sync/atomic type; method access is fine. aglint:atomic
	gauge atomic.Int64
	name  string
}

// seal is marked deterministic and must not range over maps.
//
// aglint:deterministic
func seal(m map[string]int, keys []string) int {
	total := 0
	for _, k := range keys { // good: slice range
		total += m[k]
	}
	for _, v := range m { // bad: map range in deterministic function
		total += v
	}
	func() {
		for k := range m { // bad: map range inside a closure
			_ = k
		}
	}()
	for _, v := range m { // aglint:ignore
		total += v // good: suppressed
	}
	return total
}

// free is unmarked; map iteration is fine here.
func free(m map[string]int) int {
	total := 0
	for _, v := range m { // good: function not marked
		total += v
	}
	return total
}

func touch(c *counters) uint64 {
	atomic.AddUint64(&c.hits, 1)        // good: sync/atomic call
	c.gauge.Add(1)                      // good: atomic.Int64 method
	c.hits++                            // bad: plain read-modify-write
	c.name = "x"                        // good: unmarked field
	n := c.hits                         // bad: plain read
	m := atomic.LoadUint64(&c.hits) + n // good load, feeding a local
	_ = c.hits                          // aglint:ignore — good: suppressed
	return m
}
