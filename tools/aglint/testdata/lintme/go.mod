module lintme

go 1.22
